// Package doppelganger is a from-scratch reproduction of the Doppelgänger
// cache — "Doppelgänger: A Cache for Approximate Computing" (San Miguel,
// Albericio, Moshovos, Enright Jerger; MICRO-48, 2015) — as a Go library.
//
// The Doppelgänger cache is a last-level cache for approximate computing
// that decouples its tag and data arrays and associates the tags of
// *approximately similar* blocks (blocks whose average/range hash lands in
// the same map-space bin) with a single data array entry, shrinking the
// data array several-fold with little application-level error.
//
// The package exposes four layers:
//
//   - Cache organizations: NewBaselineLLC, NewDoppelganger (with
//     DoppelgangerConfig / UniDoppelgangerConfig), NewSplitLLC — functional
//     models that plug into the simulators (§3 of the paper).
//   - Annotations: Region / NewAnnotations declare which address ranges are
//     approximable, with element type and expected value range (§4.1).
//   - Simulation: RunBenchmark executes one of the paper's nine workloads
//     against an LLC organization and reports output error; RunTiming
//     replays its traces cycle-accurately (§4).
//   - Evaluation: NewEvaluation reproduces every table and figure of §5.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package doppelganger

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/energy"
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/sweep"
	"doppelganger/internal/timesim"
	"doppelganger/internal/trace"
	"doppelganger/internal/workloads"
)

// Core value types, re-exported from the internal data plane.
type (
	// Addr is a 32-bit physical address.
	Addr = memdata.Addr
	// Block is one 64-byte cache block payload.
	Block = memdata.Block
	// ElemType is the programmer-declared element type of approximate data.
	ElemType = memdata.ElemType
	// Region is one programmer annotation: an approximable address range
	// with element type and expected min/max values.
	Region = approx.Region
	// Annotations is a validated set of Regions.
	Annotations = approx.Annotations
	// MapSpec fixes the size of the Doppelgänger map space (the paper's
	// M-bit design knob).
	MapSpec = approx.MapSpec
	// CacheConfig is the geometry of a conventional set-associative array.
	CacheConfig = cache.Config
	// DoppelConfig is the geometry of a Doppelgänger cache (decoupled tag
	// and data arrays plus map space); set Unified for uniDoppelgänger.
	DoppelConfig = core.Config
	// LLC is any last-level cache organization accepted by the simulators.
	LLC = core.LLC
	// Effects reports the structure-level work of one LLC operation.
	Effects = core.Effects
	// TimingConfig is the cycle-level core/memory model configuration.
	TimingConfig = timesim.Config
	// TimingResult is the outcome of a cycle-level run.
	TimingResult = timesim.Result
	// Table is a formatted experiment result.
	Table = sweep.Table
	// MetricsRegistry aggregates named counters/gauges/histograms from every
	// instrumented layer; nil disables collection at zero cost.
	MetricsRegistry = metrics.Registry
	// TraceWriter streams Chrome-trace JSON (chrome://tracing format).
	TraceWriter = metrics.TraceWriter
	// FaultInjector draws deterministic, seeded faults against the LLC
	// arrays, the map-generation path and DRAM; nil disables injection at
	// zero cost. Not safe for concurrent use: give each run its own.
	FaultInjector = faults.Injector
	// FaultConfig describes one injector (seed, model, per-access rate).
	FaultConfig = faults.Config
	// FaultModel selects the fault manifestation (bit flip or stuck-at).
	FaultModel = faults.Model
	// QualityController is the online quality guard: it canary-samples
	// approximate substitutions against the precise values, maintains an
	// EWMA error estimate, and circuit-breaks the Doppelgänger map path when
	// the estimate exceeds its budget (approximate loads then degrade
	// gracefully to precise LLC behaviour). nil disables the guard at zero
	// cost. Not safe for concurrent use: give each run its own.
	QualityController = quality.Controller
	// QualityConfig describes one quality guard (seed, error budget, canary
	// sampling rate, and optional EWMA/hysteresis tuning).
	QualityConfig = quality.Config
	// QualityState is the guard's circuit-breaker state (closed, open,
	// half-open).
	QualityState = quality.State
	// QualityTransition is one breaker state change, timestamped by the
	// ordinal of the approximate operation that caused it.
	QualityTransition = quality.Transition
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewFaultInjector builds a fault injector; pass it via RunOptions.Faults.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// ParseFaultModel parses a -fault-model flag spelling (flip, stuck0,
// stuck1).
func ParseFaultModel(s string) (FaultModel, error) { return faults.ParseModel(s) }

// DeriveFaultSeed mixes a global seed with a task key into an independent
// per-run injector seed (the determinism contract of the fault sweep).
func DeriveFaultSeed(seed uint64, key string) uint64 { return faults.Derive(seed, key) }

// NewQualityController builds a quality guard; pass it via RunOptions.Quality.
// It returns an error for nonsensical configurations (NaN or non-positive
// budget, canary rate outside [0,1]).
func NewQualityController(cfg QualityConfig) (*QualityController, error) { return quality.New(cfg) }

// DeriveQualitySeed mixes a global seed with a task key into an independent
// per-run canary-sampling seed (the determinism contract of the quality
// sweep; same mixing as DeriveFaultSeed).
func DeriveQualitySeed(seed uint64, key string) uint64 { return faults.Derive(seed, key) }

// NewTraceWriter starts a Chrome-trace stream on w; call Close to terminate
// the JSON envelope.
func NewTraceWriter(w io.Writer) *TraceWriter { return metrics.NewTraceWriter(w) }

// Element types for Region annotations.
const (
	U8  = memdata.U8
	I32 = memdata.I32
	F32 = memdata.F32
	F64 = memdata.F64
)

// BlockSize is the cache block size (64 bytes, Table 1).
const BlockSize = memdata.BlockSize

// NewAnnotations validates and builds an annotation set.
func NewAnnotations(regions ...Region) (*Annotations, error) {
	return approx.NewAnnotations(regions...)
}

// NewStore returns an empty simulated main memory.
func NewStore() *memdata.Store { return memdata.NewStore() }

// Store is the simulated main memory backing an LLC.
type Store = memdata.Store

// --- Table 1 configurations ---

// BaselineLLCConfig is the paper's baseline: 2 MB, 16-way.
func BaselineLLCConfig() CacheConfig {
	return CacheConfig{Name: "baseline LLC", SizeBytes: 2 << 20, Ways: 16}
}

// PreciseCacheConfig is the precise half of the split design: 1 MB, 16-way.
func PreciseCacheConfig() CacheConfig {
	return CacheConfig{Name: "precise cache", SizeBytes: 1 << 20, Ways: 16}
}

// DoppelgangerConfig is the paper's base Doppelgänger: 16 K tags (1 MB
// tag-equivalent), a 256 KB (1/4) data array, both 16-way, 14-bit map.
func DoppelgangerConfig() DoppelConfig { return sweep.SplitConfig(14, 0.25) }

// UniDoppelgangerConfig is the paper's base uniDoppelgänger: 32 K tags
// (2 MB tag-equivalent), a 1 MB (1/2) data array, 14-bit map.
func UniDoppelgangerConfig() DoppelConfig { return sweep.UnifiedConfig(14, 0.5) }

// --- organizations ---

// NewBaselineLLC builds a conventional inclusive LLC over store. ann may be
// nil; it only labels storage-analysis snapshots.
func NewBaselineLLC(cfg CacheConfig, store *Store, ann *Annotations) LLC {
	return core.NewBaseline(cfg, store, ann)
}

// NewDoppelganger builds a Doppelgänger (or, with cfg.Unified,
// uniDoppelgänger) cache over store. Every non-annotated access requires
// cfg.Unified; the split organization routes instead.
func NewDoppelganger(cfg DoppelConfig, store *Store, ann *Annotations) (*core.Doppelganger, error) {
	return core.New(cfg, store, ann)
}

// NewSplitLLC builds the paper's primary organization: a precise
// conventional cache alongside a Doppelgänger cache, with annotation-driven
// routing (§3, §4.1).
func NewSplitLLC(precise CacheConfig, doppel DoppelConfig, store *Store, ann *Annotations) (LLC, error) {
	return core.NewSplit(precise, doppel, store, ann)
}

// --- workloads and simulation ---

// Benchmarks lists the nine-workload suite in the paper's order.
func Benchmarks() []string {
	fs := workloads.All()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// DoppelStats are the Doppelgänger cache's event counters (reuse links,
// silent writes, remaps, evictions, map generations, ...).
type DoppelStats = core.Stats

// BenchmarkResult reports one functional benchmark run.
type BenchmarkResult struct {
	// Output is the application's final output vector.
	Output []float64
	// Error is the application output error versus a precise run of the
	// same benchmark (the paper's metric, §4.1); 0 for precise LLCs.
	Error float64
	// LLCTags and LLCDataBlocks are end-of-run occupancies.
	LLCTags, LLCDataBlocks int
	// Stats holds the Doppelgänger-side counters (nil for Baseline runs);
	// AvgTagsPerData is the paper's §3.5 sharing statistic.
	Stats          *DoppelStats
	AvgTagsPerData float64
}

// LLCKind selects an organization for RunBenchmark.
type LLCKind int

// The three LLC organizations of the evaluation.
const (
	Baseline LLCKind = iota
	SplitDoppelganger
	UniDoppelganger
)

// RunOptions configures RunBenchmark.
type RunOptions struct {
	// Scale sizes the workload (1 = the paper-scale working sets; small
	// values run quickly). Default 1.
	Scale float64
	// MapBits is the map space size M (default 14).
	MapBits int
	// DataFrac is the approximate data array size as a fraction of the tag
	// capacity (split) or of the baseline LLC (unified). Default 1/4 split,
	// 1/2 unified.
	DataFrac float64
	// Cores is the CMP size (default 4).
	Cores int

	// Metrics, when non-nil, attaches the simulation under measurement (the
	// chosen organization, not the precise reference run) to the registry.
	Metrics *MetricsRegistry
	// Trace, when non-nil, streams Chrome-trace events from the timing
	// replays (RunTiming): the chosen organization on process lane 1, the
	// baseline reference on lane 2.
	Trace *TraceWriter
	// Faults, when non-nil, injects faults into the simulation under
	// measurement only — never the precise reference run, which stays the
	// fault-free ground truth the error metric compares against.
	Faults *FaultInjector
	// Quality, when non-nil, attaches the online quality guard to the
	// simulation under measurement only (it is a no-op on the Baseline
	// organization, which never approximates).
	Quality *QualityController

	// TraceDir, when non-empty, enables the persistent trace cache: each
	// distinct (benchmark, organization, scale, cores) simulation records a
	// capture file there on its first run and is replayed from it afterwards
	// without executing any kernel. Runs with Faults or Quality attached are
	// exempt from routing (their injector identity is not knowable here) and
	// always execute live; the precise reference run is always eligible.
	// TraceCapture forces re-recording even over a valid capture;
	// TraceReplay forbids kernel execution, failing eligible runs that have
	// no valid capture. Both require TraceDir.
	TraceDir     string
	TraceCapture bool
	TraceReplay  bool
}

func (o *RunOptions) defaults(kind LLCKind) {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.MapBits == 0 {
		o.MapBits = 14
	}
	if o.DataFrac == 0 {
		if kind == UniDoppelganger {
			o.DataFrac = 0.5
		} else {
			o.DataFrac = 0.25
		}
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
}

// cellKey names the sweep-compatible cell a facade run corresponds to, so
// doppelsim and an experiments sweep over the same trace directory share
// capture files.
func cellKey(name string, kind LLCKind, opt *RunOptions) string {
	switch kind {
	case SplitDoppelganger:
		return fmt.Sprintf("split/%s/%d/%g", name, opt.MapBits, opt.DataFrac)
	case UniDoppelganger:
		return fmt.Sprintf("uni/%s/%d/%g", name, opt.MapBits, opt.DataFrac)
	}
	return "base/" + name
}

// runRouted is the facade's trace-cache gateway: without a trace directory
// it is exactly the live path; with one, it replays a valid capture of the
// identified simulation, or records one (atomically) from a live run. mk
// must return a fresh benchmark instance per call — replay needs its own to
// re-derive the Output closure's addresses.
//
// Storage faults never fail a run (outside TraceReplay): corrupt or stale
// captures are quarantined and re-recorded, and an unavailable store —
// read errors, ENOSPC, unwritable dir — degrades the run to plain live
// execution. Both recoveries count on opt.Metrics under trace.*, matching
// the sweep runner's instrumentation.
func runRouted(ctx context.Context, opt *RunOptions, name, key string, mk func() *workloads.Benchmark,
	llcb workloads.LLCBuilder, ropt workloads.RunOptions) (*workloads.RunResult, error) {
	if opt.TraceDir == "" {
		return workloads.RunFunctionalContext(ctx, mk(), llcb, ropt)
	}
	fsys := trace.OS
	ident := workloads.CaptureIdent(key, opt.Scale, opt.Cores, "")
	path := workloads.CapturePath(opt.TraceDir, ident)
	persist := true
	if !opt.TraceCapture {
		c, outcome, err := workloads.LoadCaptureRecover(fsys, opt.TraceDir, path, ident, opt.Cores, false)
		if opt.TraceReplay && outcome != workloads.LoadOK {
			if err == nil {
				err = os.ErrNotExist
			}
			return nil, fmt.Errorf("doppelganger: trace replay: no usable capture for %s: %w", key, err)
		}
		switch outcome {
		case workloads.LoadOK:
			opt.Metrics.Counter("trace.replays").Add(1)
			return workloads.ReplayFunctionalContext(ctx, mk(), c, llcb, ropt)
		case workloads.LoadQuarantined:
			opt.Metrics.Counter("trace.quarantines").Add(1)
		case workloads.LoadUnavailable:
			persist = false
			opt.Metrics.Counter("trace.degraded").Add(1)
		}
	}
	ropt.Record = true
	run, err := workloads.RunFunctionalContext(ctx, mk(), llcb, ropt)
	if err != nil {
		return nil, err
	}
	c, err := workloads.CaptureOf(run, trace.FileHeader{
		Benchmark: name, Scale: opt.Scale, Cores: opt.Cores, ConfigKey: ident,
	})
	if err != nil {
		return nil, err
	}
	if persist {
		if err := persistRouted(fsys, opt.TraceDir, path, c); err != nil {
			// Graceful degradation: the live run is complete and correct;
			// losing the capture only costs the next run a re-record.
			opt.Metrics.Counter("trace.degraded").Add(1)
		} else {
			opt.Metrics.Counter("trace.records").Add(1)
		}
	}
	return run, nil
}

// persistRouted commits one facade-recorded capture: ensure the directory,
// then the atomic durable write.
func persistRouted(fsys trace.FS, dir, path string, c *trace.Capture) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("doppelganger: trace dir: %w", err)
	}
	return c.WriteFileFS(fsys, path)
}

// RunBenchmark executes the named workload functionally against the chosen
// LLC organization and measures application output error against a precise
// baseline run (the paper's Pin-style methodology, §4).
func RunBenchmark(name string, kind LLCKind, opt RunOptions) (*BenchmarkResult, error) {
	return RunBenchmarkContext(context.Background(), name, kind, opt)
}

// RunBenchmarkContext is RunBenchmark under a cancellable context: a cancel
// or deadline aborts both simulations at their next scheduling point and
// returns ctx's error.
func RunBenchmarkContext(ctx context.Context, name string, kind LLCKind, opt RunOptions) (*BenchmarkResult, error) {
	opt.defaults(kind)
	f, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	builder := workloads.BaselineBuilder(2<<20, 16)
	switch kind {
	case SplitDoppelganger:
		builder = workloads.SplitBuilder(opt.MapBits, opt.DataFrac)
	case UniDoppelganger:
		builder = workloads.UnifiedBuilder(opt.MapBits, opt.DataFrac)
	}
	// The approximate run and the precise reference run are independent
	// simulations (each owns its benchmark instance and store), so they can
	// execute concurrently without affecting results. The fault injector (a
	// serial structure) attaches only to the run under measurement.
	var run, precise *workloads.RunResult
	var preciseErr error
	var wg sync.WaitGroup
	mk := func() *workloads.Benchmark { return f.New(opt.Scale) }
	if kind != Baseline {
		wg.Add(1)
		go func() {
			defer wg.Done()
			precise, preciseErr = runRouted(ctx, &opt, name, "base/"+name, mk,
				workloads.BaselineBuilder(2<<20, 16), workloads.RunOptions{Cores: opt.Cores})
		}()
	}
	mopt := workloads.RunOptions{Cores: opt.Cores, Metrics: opt.Metrics, Faults: opt.Faults, Quality: opt.Quality}
	if opt.Faults != nil || opt.Quality != nil {
		// The injector/guard identity is not part of the capture key at this
		// layer, so a faulted or guarded measurement always runs live.
		run, err = workloads.RunFunctionalContext(ctx, mk(), builder, mopt)
	} else {
		run, err = runRouted(ctx, &opt, name, cellKey(name, kind, &opt), mk, builder, mopt)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if preciseErr != nil {
		return nil, preciseErr
	}
	res := &BenchmarkResult{
		Output:         run.Output,
		LLCTags:        run.TagsAtEnd,
		LLCDataBlocks:  run.DataBlocksAtEnd,
		Stats:          run.DoppelStats,
		AvgTagsPerData: run.AvgTagsPerData,
	}
	if precise != nil {
		res.Error = f.New(opt.Scale).Error(precise.Output, run.Output)
	}
	return res, nil
}

// RunMultiprogram runs several benchmarks side by side on the CMP — each
// program in its own physical-address slice with its own annotations (the
// paper's per-application range registers, §4.1) and its own share of the
// cores. The result's Error averages the per-program errors under each
// program's own metric.
func RunMultiprogram(names []string, kind LLCKind, opt RunOptions) (*BenchmarkResult, error) {
	opt.defaults(kind)
	build := func() (*workloads.Benchmark, error) {
		progs := make([]*workloads.Benchmark, len(names))
		for i, n := range names {
			f, err := workloads.ByName(n)
			if err != nil {
				return nil, err
			}
			progs[i] = f.New(opt.Scale)
		}
		return workloads.Multiprogram(progs...), nil
	}
	mp, err := build()
	if err != nil {
		return nil, err
	}
	builder := workloads.BaselineBuilder(2<<20, 16)
	switch kind {
	case SplitDoppelganger:
		builder = workloads.SplitBuilder(opt.MapBits, opt.DataFrac)
	case UniDoppelganger:
		builder = workloads.UnifiedBuilder(opt.MapBits, opt.DataFrac)
	}
	// A multiprogram Benchmark carries mutable captured state, so every
	// routed run gets its own instance from build().
	mk := func() *workloads.Benchmark {
		b, err := build()
		if err != nil {
			// build() succeeded above with identical inputs.
			panic(err)
		}
		return b
	}
	mpName := strings.Join(names, "+")
	ctx := context.Background()
	var precise, run *workloads.RunResult
	var preciseErr, runErr error
	var wg sync.WaitGroup
	if kind != Baseline {
		wg.Add(1)
		go func() {
			defer wg.Done()
			precise, preciseErr = runRouted(ctx, &opt, mpName, "mp/base/"+mpName, mk,
				workloads.BaselineBuilder(2<<20, 16), workloads.RunOptions{Cores: opt.Cores})
		}()
	}
	// Error scoring must use an instance whose own Output pass ran (a
	// multiprogram Benchmark learns its per-program output lengths there),
	// so track which instance the measured run actually used.
	measured := mp
	mopt := workloads.RunOptions{Cores: opt.Cores, Metrics: opt.Metrics, Faults: opt.Faults, Quality: opt.Quality}
	if opt.Faults != nil || opt.Quality != nil {
		run, runErr = workloads.RunFunctionalContext(ctx, mp, builder, mopt)
	} else {
		mkMeasured := func() *workloads.Benchmark {
			measured = mk()
			return measured
		}
		run, runErr = runRouted(ctx, &opt, mpName, "mp/"+cellKey(mpName, kind, &opt), mkMeasured, builder, mopt)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if preciseErr != nil {
		return nil, preciseErr
	}
	res := &BenchmarkResult{
		Output:         run.Output,
		LLCTags:        run.TagsAtEnd,
		LLCDataBlocks:  run.DataBlocksAtEnd,
		Stats:          run.DoppelStats,
		AvgTagsPerData: run.AvgTagsPerData,
	}
	if precise != nil {
		res.Error = measured.Error(precise.Output, run.Output)
	}
	return res, nil
}

// DefaultTimingConfig is the paper's Table 1 system: 4 cores, 4-wide,
// 80-entry ROB, 1/3/6-cycle cache levels, 160-cycle DRAM.
func DefaultTimingConfig() TimingConfig { return timesim.DefaultConfig() }

// TimingComparison reports one benchmark's cycle-level behaviour under an
// approximate LLC organization next to the baseline (the paper's Figs.
// 9b/10b/12 per-benchmark data points).
type TimingComparison struct {
	BaselineCycles uint64
	Cycles         uint64
	// NormalizedRuntime is Cycles / BaselineCycles (1.0 = no slowdown).
	NormalizedRuntime float64
	// MPKI is the organization's LLC misses per thousand instructions.
	MPKI float64
	// NormalizedTraffic is off-chip traffic relative to the baseline.
	NormalizedTraffic float64
}

// RunTiming records the named benchmark's traces on a precise baseline run
// and replays them cycle-accurately against both the baseline LLC and the
// chosen organization (the paper's §4 methodology).
func RunTiming(name string, kind LLCKind, opt RunOptions) (*TimingComparison, error) {
	opt.defaults(kind)
	f, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	run, err := runRouted(context.Background(), &opt, name, "base/"+name,
		func() *workloads.Benchmark { return f.New(opt.Scale) },
		workloads.BaselineBuilder(2<<20, 16), workloads.RunOptions{Cores: opt.Cores, Record: true})
	if err != nil {
		return nil, err
	}
	cfg := timesim.DefaultConfig()
	cfg.Cores = opt.Cores
	builder := workloads.BaselineBuilder(2<<20, 16)
	switch kind {
	case SplitDoppelganger:
		builder = workloads.SplitBuilder(opt.MapBits, opt.DataFrac)
	case UniDoppelganger:
		builder = workloads.UnifiedBuilder(opt.MapBits, opt.DataFrac)
	}
	// The chosen organization's replay carries the observability hooks and
	// the fault injector; the baseline reference gets its own trace lane but
	// no registry and no faults (so counter totals describe exactly one
	// simulation and the reference stays fault-free).
	selCfg, baseCfg := cfg, cfg
	selCfg.Metrics = opt.Metrics
	selCfg.Faults = opt.Faults
	selCfg.Quality = opt.Quality
	if opt.Trace != nil {
		selCfg.Trace, selCfg.TracePID, selCfg.TraceLabel = opt.Trace, 1, name+" (chosen org)"
		baseCfg.Trace, baseCfg.TracePID, baseCfg.TraceLabel = opt.Trace, 2, name+" (baseline)"
	}
	// The two replays read the recorded traces and clone the initial memory
	// image independently, so they run concurrently.
	var base *TimingResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		base = timesim.Run(run.Recorder, run.InitialMem, run.Annotations,
			workloads.BaselineBuilder(2<<20, 16), baseCfg)
	}()
	res := timesim.Run(run.Recorder, run.InitialMem, run.Annotations, builder, selCfg)
	wg.Wait()
	return &TimingComparison{
		BaselineCycles:    base.Cycles,
		Cycles:            res.Cycles,
		NormalizedRuntime: float64(res.Cycles) / float64(base.Cycles),
		MPKI:              res.MPKI(),
		NormalizedTraffic: float64(res.MemTraffic()) / float64(base.MemTraffic()),
	}, nil
}

// --- hardware cost model ---

// HardwareOrg is an LLC organization's silicon cost model (area, leakage,
// per-access energies), calibrated to the paper's Table 3.
type HardwareOrg = energy.Org

// BaselineHardware models the baseline 2 MB LLC.
func BaselineHardware() HardwareOrg { return energy.BaselineOrg(2<<20, 16, 4) }

// SplitHardware models precise + Doppelgänger for a map size and data
// fraction.
func SplitHardware(mapBits int, dataFrac float64) HardwareOrg {
	return energy.SplitOrg(1<<20, 16, sweep.SplitConfig(mapBits, dataFrac), 4)
}

// UnifiedHardware models uniDoppelgänger for a data fraction of the
// baseline LLC.
func UnifiedHardware(mapBits int, dataFrac float64) HardwareOrg {
	return energy.UnifiedOrg(sweep.UnifiedConfig(mapBits, dataFrac), 4)
}

// --- evaluation harness ---

// Evaluation regenerates the paper's tables and figures. Experiments share
// and memoize baseline runs, so asking for several figures in one
// Evaluation is much cheaper than separate ones. Prewarm fans the whole
// simulation grid out over a worker pool first; the table methods then
// format already-computed results, with values bit-identical to a serial
// run.
type Evaluation struct{ r *sweep.Runner }

// NewEvaluation builds an evaluation at the given workload scale (1 = paper
// scale). log may be nil.
func NewEvaluation(scale float64, log io.Writer) *Evaluation {
	r := sweep.NewRunner(scale)
	r.Log = log
	return &Evaluation{r: r}
}

// Restrict limits the suite to the named benchmarks.
func (e *Evaluation) Restrict(names ...string) { e.r.Only = names }

// Parallel sets the maximum number of concurrent simulations Prewarm may
// run (0, the default, means GOMAXPROCS).
func (e *Evaluation) Parallel(workers int) { e.r.Workers = workers }

// CollectMetrics enables the observability layer for every simulation this
// evaluation performs: per-level cache hits/misses/evictions, MSI transition
// counts, Doppelgänger substitution and occupancy instruments, core-model
// stalls — aggregated across tasks and also snapshotted per task. Call
// before running experiments; WriteMetrics dumps the result.
func (e *Evaluation) CollectMetrics() {
	if e.r.Metrics == nil {
		e.r.Metrics = metrics.NewRegistry()
	}
}

// WriteMetrics writes one JSON object per line: every per-task counter
// snapshot (sorted by task label), then the evaluation-wide aggregate under
// the task label "total". A no-op unless CollectMetrics was called.
func (e *Evaluation) WriteMetrics(w io.Writer) error { return e.r.WriteMetricsJSONL(w) }

// TraceTo streams Chrome-trace-format JSON (loadable in chrome://tracing or
// Perfetto) to w: every timing run gets its own process lane, one thread per
// simulated core, with LLC/memory operations as duration events and
// back-invalidation bursts as instants. Call the returned function after the
// experiments finish to terminate the JSON envelope.
func (e *Evaluation) TraceTo(w io.Writer) (finish func() error) {
	tw := metrics.NewTraceWriter(w)
	e.r.Trace = tw
	return tw.Close
}

// Resilience configures the experiment engine's failure handling: a
// per-task deadline (0 disables) and a bounded retry budget per failed task
// (failures are forgotten by the memo caches, so retries genuinely
// recompute). A panicking simulation always fails only its own task.
func (e *Evaluation) Resilience(taskTimeout time.Duration, retries int) {
	e.r.TaskTimeout = taskTimeout
	e.r.Retries = retries
}

// Faults configures the fault-sweep experiment: the per-access rates to
// evaluate (nil: 1e-6, 1e-5, 1e-4), the global seed every task derives its
// injector stream from, and the fault model. Results are deterministic in
// (rates, seed, model) at any worker count.
func (e *Evaluation) Faults(rates []float64, seed uint64, model FaultModel) {
	e.r.FaultRates = rates
	e.r.FaultSeed = seed
	e.r.FaultModel = model
}

// CheckpointTo persists every completed simulation result to the JSONL file
// at path as it finishes. With resume set, records already in the file are
// loaded first and their tasks are skipped bit-identically; a file written
// by an incompatible schema version is rejected with an error. The returned
// finish function flushes and closes the file.
func (e *Evaluation) CheckpointTo(path string, resume bool) (finish func() error, err error) {
	cp, err := sweep.OpenCheckpoint(path, resume)
	if err != nil {
		return nil, err
	}
	e.r.Checkpoint = cp
	if resume {
		e.r.Resume(cp)
	}
	return cp.Close, nil
}

// CheckpointWarnings reports the recoverable oddities the checkpoint loader
// tolerated (duplicate keys, torn trailing lines, unknown record kinds).
// Empty until CheckpointTo has run, and for clean files.
func (e *Evaluation) CheckpointWarnings() []string {
	if e.r.Checkpoint == nil {
		return nil
	}
	return e.r.Checkpoint.Warnings()
}

// Traces enables the evaluation's persistent trace cache in dir: every
// functional cell (baseline, split, unified, custom, fault, quality)
// records a capture file on its first live run and replays it on later
// sweeps over the same directory, executing zero kernels when the cache is
// warm. capture forces re-recording over valid captures; replay forbids
// kernel execution, failing any cell without a valid capture. Captures are
// identity-checked (benchmark, scale, cores, seeds, knobs) and re-recorded
// when stale; results are bit-identical to live runs either way.
func (e *Evaluation) Traces(dir string, capture, replay bool) {
	e.r.TraceDir = dir
	e.r.TraceCapture = capture
	e.r.TraceReplay = replay
}

// BatchReplay accelerates warm-trace sweeps. cacheMB > 0 attaches an
// in-memory decoded-capture cache of that many megabytes, so each capture
// file is read and decoded once per sweep instead of once per consumer;
// batch > 1 additionally replays up to that many identical-stream quality
// cells in a single pass over one decoded stream. Results stay bit-identical
// to sequential replay. No effect until Traces enables a directory.
func (e *Evaluation) BatchReplay(batch, cacheMB int) {
	if cacheMB > 0 {
		c := trace.NewDecodedCache(int64(cacheMB) << 20)
		c.AttachMetrics(e.r.Metrics)
		e.r.DecodedCache = c
	}
	e.r.ReplayBatch = batch
}

// TraceStore is an opened, locked, scrubbed trace directory (see
// OpenTraceStore); TraceScrubReport is what its startup janitor did.
type (
	TraceStore       = trace.Store
	TraceScrubReport = trace.ScrubReport
)

// OpenTraceStore prepares a trace directory for use: creates it, takes the
// advisory cross-process lock, and — when this process is alone in the
// directory — scrubs it (sweeping orphaned temp files and, per the verify
// mode "off", "open" or "full", checking each capture's integrity and
// quarantining the condemned) before settling into the long-lived shared
// lock. Callers should hold the store for the life of the process and
// Close it on the way out. Opening the store is recommended hygiene before
// any run that uses a trace dir, and what the -trace-verify flag does in
// the bundled binaries.
func OpenTraceStore(dir, verify string) (*TraceStore, error) {
	mode, err := trace.ParseVerifyMode(verify)
	if err != nil {
		return nil, err
	}
	return trace.OpenStore(trace.OS, dir, mode)
}

// Prewarm runs every simulation the paper's tables and figures need
// (plus the extras grid when extras is true) through the parallel
// experiment engine, respecting baseline-before-variant dependencies.
// Safe to skip: the table methods compute lazily (and serially) on miss.
func (e *Evaluation) Prewarm(extras bool) error {
	return e.r.Prewarm(sweep.FullGrid(extras))
}

// PrewarmContext is Prewarm under a cancellable context: cancellation stops
// scheduling new tasks, interrupts in-flight simulations, and returns after
// every worker drains — completed results stay cached (and checkpointed),
// so a later run resumes where this one stopped.
func (e *Evaluation) PrewarmContext(ctx context.Context, extras bool) error {
	return e.r.PrewarmContext(ctx, sweep.FullGrid(extras))
}

// PrewarmFor is Prewarm restricted to the simulations the named experiments
// (table2, fig2 … fig14, table3, extras, faults, quality) actually render;
// unknown names widen to the full grid.
func (e *Evaluation) PrewarmFor(names ...string) error {
	return e.r.Prewarm(sweep.GridFor(names...))
}

// PrewarmForContext is PrewarmFor under a cancellable context.
func (e *Evaluation) PrewarmForContext(ctx context.Context, names ...string) error {
	return e.r.PrewarmContext(ctx, sweep.GridFor(names...))
}

// Table2 is the approximate LLC footprint per benchmark.
func (e *Evaluation) Table2() (*Table, error) { return e.r.Table2() }

// Table3 is the hardware cost table (static — never fails).
func (e *Evaluation) Table3() *Table { return e.r.Table3() }

// Fig2 is storage savings vs element-wise threshold T.
func (e *Evaluation) Fig2() (*Table, error) { return e.r.Fig2() }

// Fig7 is storage savings vs map space size.
func (e *Evaluation) Fig7() (*Table, error) { return e.r.Fig7() }

// Fig8 compares against BΔI and exact deduplication.
func (e *Evaluation) Fig8() (*Table, error) { return e.r.Fig8() }

// Fig9 is output error and normalized runtime vs map space size.
func (e *Evaluation) Fig9() (errT, runT *Table, err error) { return e.r.Fig9() }

// Fig10 is output error and normalized runtime vs data array size.
func (e *Evaluation) Fig10() (errT, runT *Table, err error) { return e.r.Fig10() }

// Fig11 is LLC dynamic and leakage energy reduction.
func (e *Evaluation) Fig11() (dynT, leakT *Table, err error) { return e.r.Fig11() }

// Fig12 is normalized off-chip memory traffic.
func (e *Evaluation) Fig12() (*Table, error) { return e.r.Fig12() }

// Fig13 is LLC area reduction (static — never fails).
func (e *Evaluation) Fig13() *Table { return e.r.Fig13() }

// Fig14 is uniDoppelgänger error, runtime and dynamic energy.
func (e *Evaluation) Fig14() (errT, runT, dynT *Table, err error) { return e.r.Fig14() }

// Extras evaluates this repository's extensions beyond the paper:
// alternative similarity hashes, tag-count-aware replacement, and the
// BΔI-compressed data array.
func (e *Evaluation) Extras() (*Table, error) { return e.r.Extras() }

// FaultSweep renders output error vs per-access fault rate for the
// baseline, Doppelgänger and uniDoppelgänger organizations under the
// configured fault model (see Faults) — how gracefully each organization
// degrades when the memory system itself misbehaves.
func (e *Evaluation) FaultSweep() (*Table, error) { return e.r.FaultSweep() }

// Quality configures the quality-sweep experiment: the guard's output-error
// budget (0: 5%), its canary sampling rate (0: 5%), and the global seed every
// guarded task derives its sampling stream from. The fault rates and model
// come from Faults. Results are deterministic at any worker count.
func (e *Evaluation) Quality(budget, canaryRate float64, seed uint64) {
	e.r.QualityBudget = budget
	e.r.CanaryRate = canaryRate
	e.r.QualitySeed = seed
}

// QualitySweep renders the quality-guard experiment: true output error with
// the guard off versus on (plus the guard's own estimate, canary overhead and
// breaker history) and normalized runtime with the guard off versus on, per
// benchmark, guarded organization and fault rate — what graceful degradation
// to precise LLC behaviour costs and saves.
func (e *Evaluation) QualitySweep() (errT, runT *Table, err error) { return e.r.QualitySweep() }
