// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 1] [-only bench1,bench2] [-quiet] [-workers N] [-serial] [-format text|csv|json|chart] all
//	experiments table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table3
//
// By default the full simulation grid is fanned out over a worker pool
// (one worker per CPU; -workers overrides) before the tables are rendered
// in deterministic paper order. -serial skips the parallel engine and
// computes every simulation lazily on one goroutine; the numbers are
// bit-identical either way.
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"doppelganger"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1, "workload scale (1 = paper-size working sets)")
		only    = flag.String("only", "", "comma-separated benchmark subset")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		format  = flag.String("format", "text", "output format: text, csv, json, chart")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		serial  = flag.Bool("serial", false, "skip the parallel engine; compute lazily on one goroutine")

		metricsOut = flag.String("metrics-out", "", "write per-task + total counter snapshots as JSONL to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace JSON (chrome://tracing) of every timing run to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	ev := doppelganger.NewEvaluation(*scale, log)
	if *only != "" {
		ev.Restrict(strings.Split(*only, ",")...)
	}
	ev.Parallel(*workers)

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
	}
	if *metricsOut != "" {
		ev.CollectMetrics()
	}
	var finishTrace func() error
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		finish := ev.TraceTo(tf)
		finishTrace = func() error {
			if err := finish(); err != nil {
				return err
			}
			return tf.Close()
		}
	}

	order := []string{"table2", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "table3", "extras"}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			// "all" covers the paper's tables and figures; the extras table
			// is requested explicitly.
			for _, o := range order {
				if o != "extras" {
					want[o] = true
				}
			}
			continue
		}
		want[strings.ToLower(a)] = true
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	// Fan the requested experiments' simulation grid out over the engine up
	// front; the emit loop below then renders from warm caches in paper
	// order.
	var wanted []string
	dynamic := false
	for _, o := range order {
		if want[o] {
			wanted = append(wanted, o)
			if o != "table3" && o != "fig13" {
				dynamic = true
			}
		}
	}
	if dynamic && !*serial {
		if err := ev.PrewarmFor(wanted...); err != nil {
			fail(err)
		}
	}

	emit := func(ts ...*doppelganger.Table) {
		for _, t := range ts {
			switch *format {
			case "csv":
				fmt.Printf("# %s\n%s\n", t.Title, t.FormatCSV())
			case "json":
				fmt.Println(t.FormatJSON())
			case "chart":
				fmt.Println(t.FormatChart())
			default:
				fmt.Println(t.Format())
			}
		}
	}
	emitErr := func(err error, ts ...*doppelganger.Table) {
		if err != nil {
			fail(err)
		}
		emit(ts...)
	}
	ran := 0
	for _, name := range order {
		if !want[name] {
			continue
		}
		ran++
		switch name {
		case "table2":
			t, err := ev.Table2()
			emitErr(err, t)
		case "fig2":
			t, err := ev.Fig2()
			emitErr(err, t)
		case "fig7":
			t, err := ev.Fig7()
			emitErr(err, t)
		case "fig8":
			t, err := ev.Fig8()
			emitErr(err, t)
		case "fig9":
			a, b, err := ev.Fig9()
			emitErr(err, a, b)
		case "fig10":
			a, b, err := ev.Fig10()
			emitErr(err, a, b)
		case "fig11":
			a, b, err := ev.Fig11()
			emitErr(err, a, b)
		case "fig12":
			t, err := ev.Fig12()
			emitErr(err, t)
		case "fig13":
			emit(ev.Fig13())
		case "fig14":
			a, b, c, err := ev.Fig14()
			emitErr(err, a, b, c)
		case "table3":
			emit(ev.Table3())
		case "extras":
			t, err := ev.Extras()
			emitErr(err, t)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched %v (known: %s, all)\n", args, strings.Join(order, ", "))
		os.Exit(2)
	}

	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := ev.WriteMetrics(mf); err != nil {
			fail(err)
		}
		if err := mf.Close(); err != nil {
			fail(err)
		}
	}
	if finishTrace != nil {
		if err := finishTrace(); err != nil {
			fail(err)
		}
	}
}
