// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 1] [-only bench1,bench2] [-quiet] [-format text|csv|json|chart] all
//	experiments table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table3
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doppelganger"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1, "workload scale (1 = paper-size working sets)")
		only   = flag.String("only", "", "comma-separated benchmark subset")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
		format = flag.String("format", "text", "output format: text, csv, json, chart")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	ev := doppelganger.NewEvaluation(*scale, log)
	if *only != "" {
		ev.Restrict(strings.Split(*only, ",")...)
	}

	order := []string{"table2", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "table3", "extras"}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			// "all" covers the paper's tables and figures; the extras table
			// is requested explicitly.
			for _, o := range order {
				if o != "extras" {
					want[o] = true
				}
			}
			continue
		}
		want[strings.ToLower(a)] = true
	}

	emit := func(ts ...*doppelganger.Table) {
		for _, t := range ts {
			switch *format {
			case "csv":
				fmt.Printf("# %s\n%s\n", t.Title, t.FormatCSV())
			case "json":
				fmt.Println(t.FormatJSON())
			case "chart":
				fmt.Println(t.FormatChart())
			default:
				fmt.Println(t.Format())
			}
		}
	}
	ran := 0
	for _, name := range order {
		if !want[name] {
			continue
		}
		ran++
		switch name {
		case "table2":
			emit(ev.Table2())
		case "fig2":
			emit(ev.Fig2())
		case "fig7":
			emit(ev.Fig7())
		case "fig8":
			emit(ev.Fig8())
		case "fig9":
			a, b := ev.Fig9()
			emit(a, b)
		case "fig10":
			a, b := ev.Fig10()
			emit(a, b)
		case "fig11":
			a, b := ev.Fig11()
			emit(a, b)
		case "fig12":
			emit(ev.Fig12())
		case "fig13":
			emit(ev.Fig13())
		case "fig14":
			a, b, c := ev.Fig14()
			emit(a, b, c)
		case "table3":
			emit(ev.Table3())
		case "extras":
			emit(ev.Extras())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched %v (known: %s, all)\n", args, strings.Join(order, ", "))
		os.Exit(2)
	}
}
