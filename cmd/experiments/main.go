// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 1] [-only bench1,bench2] [-quiet] [-workers N] [-serial] [-format text|csv|json|chart] all
//	experiments table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table3
//	experiments -fault-rate 1e-5,1e-4 -seed 42 faults
//	experiments -quality-budget 0.05 -canary-rate 0.05 -quality-seed 1 quality
//	experiments -checkpoint run.jsonl [-resume] [-timeout 2h] [-task-timeout 10m] [-retries 2] all
//
// By default the full simulation grid is fanned out over a worker pool
// (one worker per CPU; -workers overrides) before the tables are rendered
// in deterministic paper order. -serial skips the parallel engine and
// computes every simulation lazily on one goroutine; the numbers are
// bit-identical either way.
//
// The run shuts down gracefully on SIGINT/SIGTERM (or when -timeout
// expires): in-flight simulations are interrupted, completed results are
// flushed to the -checkpoint file and -metrics-out, and the process exits
// 130 (interrupt) or 1 (failure). A later invocation with -resume skips
// every checkpointed task and renders bit-identical tables.
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"doppelganger"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1, "workload scale (1 = paper-size working sets)")
		only    = flag.String("only", "", "comma-separated benchmark subset")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		format  = flag.String("format", "text", "output format: text, csv, json, chart")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		serial  = flag.Bool("serial", false, "skip the parallel engine; compute lazily on one goroutine")

		timeout     = flag.Duration("timeout", 0, "overall wall-clock budget; the run shuts down gracefully when it expires (0 = none)")
		taskTimeout = flag.Duration("task-timeout", 0, "per-task deadline; a task exceeding it fails and may retry (0 = none)")
		retries     = flag.Int("retries", 0, "retries per failed task, with exponential backoff")
		checkpoint  = flag.String("checkpoint", "", "persist completed results to this JSONL file as they finish")
		resume      = flag.Bool("resume", false, "load -checkpoint first and skip already-completed tasks bit-identically")

		faultRates = flag.String("fault-rate", "", "comma-separated per-access fault rates for the faults experiment (default 1e-6,1e-5,1e-4)")
		faultSeed  = flag.Uint64("seed", 1, "global fault-injection seed; results are deterministic in it at any worker count")
		faultModel = flag.String("fault-model", "flip", "fault manifestation: flip, stuck0, stuck1")

		qualityBudget = flag.Float64("quality-budget", 0.05, "quality-guard output-error budget for the quality experiment")
		canaryRate    = flag.Float64("canary-rate", 0.05, "quality-guard canary sampling rate (fraction of substitutions checked precisely)")
		qualitySeed   = flag.Uint64("quality-seed", 1, "global canary-sampling seed; results are deterministic in it at any worker count")

		traceDir     = flag.String("trace-dir", "", "persistent trace-cache directory: record each functional cell's capture on first run, replay on later sweeps (zero kernel executions when warm)")
		traceCapture = flag.Bool("trace-capture", false, "force re-recording captures in -trace-dir even when valid ones exist")
		traceReplay  = flag.Bool("trace-replay", false, "forbid kernel execution: fail any cell without a valid capture in -trace-dir")
		traceVerify  = flag.String("trace-verify", "open", "startup scrub strictness for -trace-dir: off (sweep temp files only), open (verify each capture's digest), full (fully decode each capture)")

		decodedCacheMB = flag.Int("decoded-cache-mb", 0, "in-memory decoded-capture cache budget, MB: decode each capture in -trace-dir once per sweep, not once per consumer (0 disables)")
		replayBatch    = flag.Int("replay-batch", 0, "max identical-stream quality cells replayed per single-pass walk over a warm -trace-dir; needs -decoded-cache-mb (<=1 disables)")

		metricsOut = flag.String("metrics-out", "", "write per-task + total counter snapshots as JSONL to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace JSON (chrome://tracing) of every timing run to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if err := validateOptions(sweepOptions{
		Scale:          *scale,
		Workers:        *workers,
		WorkersSet:     workersSet,
		Retries:        *retries,
		QualityBudget:  *qualityBudget,
		CanaryRate:     *canaryRate,
		TraceDir:       *traceDir,
		TraceCapture:   *traceCapture,
		TraceReplay:    *traceReplay,
		TraceVerify:    *traceVerify,
		DecodedCacheMB: *decodedCacheMB,
		ReplayBatch:    *replayBatch,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	ev := doppelganger.NewEvaluation(*scale, log)
	if *only != "" {
		ev.Restrict(strings.Split(*only, ",")...)
	}
	ev.Parallel(*workers)
	ev.Resilience(*taskTimeout, *retries)

	model, err := doppelganger.ParseFaultModel(*faultModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	var rates []float64
	if *faultRates != "" {
		if rates, err = parseRates(*faultRates); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	ev.Faults(rates, *faultSeed, model)
	ev.Quality(*qualityBudget, *canaryRate, *qualitySeed)
	if *traceDir != "" {
		// Open the store first: lock the directory for the run's lifetime
		// and scrub it (sweep orphaned temps, quarantine condemned captures)
		// before any cell trusts its contents.
		store, err := doppelganger.OpenTraceStore(*traceDir, *traceVerify)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		if rep := store.Report; log != nil && !rep.Skipped &&
			(rep.TempsRemoved > 0 || rep.Quarantined > 0 || rep.Unreadable > 0) {
			fmt.Fprintf(os.Stderr, "experiments: trace scrub: removed %d temp(s), quarantined %d, %d unreadable (%d verified)\n",
				rep.TempsRemoved, rep.Quarantined, rep.Unreadable, rep.Verified)
		}
		ev.Traces(*traceDir, *traceCapture, *traceReplay)
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint")
		os.Exit(2)
	}

	// The run context: SIGINT/SIGTERM and -timeout all funnel into one
	// cancellation that drains the engine gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
	}
	if *metricsOut != "" {
		ev.CollectMetrics()
	}
	if *traceDir != "" {
		// After CollectMetrics, so the decoded cache's counters land on the
		// registry -metrics-out snapshots.
		ev.BatchReplay(*replayBatch, *decodedCacheMB)
	}
	var finishTrace func() error
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		finish := ev.TraceTo(tf)
		finishTrace = func() error {
			if err := finish(); err != nil {
				return err
			}
			return tf.Close()
		}
	}
	var finishCheckpoint func() error
	if *checkpoint != "" {
		finishCheckpoint, err = ev.CheckpointTo(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for _, w := range ev.CheckpointWarnings() {
			fmt.Fprintf(os.Stderr, "experiments: checkpoint: %s\n", w)
		}
	}

	// flush persists whatever has completed — called on success AND on
	// failure/interrupt, so partial results always land on disk.
	flush := func() {
		if *metricsOut != "" {
			if mf, err := os.Create(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			} else {
				if err := ev.WriteMetrics(mf); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				}
				mf.Close()
			}
		}
		if finishTrace != nil {
			if err := finishTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}
		if finishCheckpoint != nil {
			if err := finishCheckpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}
	}
	fail := func(err error) {
		flush()
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		if errors.Is(ctx.Err(), context.Canceled) {
			os.Exit(130) // interrupted: partial results are checkpointed
		}
		os.Exit(1)
	}

	order := []string{"table2", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "table3", "extras", "faults", "quality"}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			// "all" covers the paper's tables and figures; the extras, faults
			// and quality tables are requested explicitly.
			for _, o := range order {
				if o != "extras" && o != "faults" && o != "quality" {
					want[o] = true
				}
			}
			continue
		}
		want[strings.ToLower(a)] = true
	}

	// Fan the requested experiments' simulation grid out over the engine up
	// front; the emit loop below then renders from warm caches in paper
	// order.
	var wanted []string
	dynamic := false
	for _, o := range order {
		if want[o] {
			wanted = append(wanted, o)
			if o != "table3" && o != "fig13" {
				dynamic = true
			}
		}
	}
	if dynamic && !*serial {
		if err := ev.PrewarmForContext(ctx, wanted...); err != nil {
			fail(err)
		}
	}

	emit := func(ts ...*doppelganger.Table) {
		for _, t := range ts {
			switch *format {
			case "csv":
				fmt.Printf("# %s\n%s\n", t.Title, t.FormatCSV())
			case "json":
				fmt.Println(t.FormatJSON())
			case "chart":
				fmt.Println(t.FormatChart())
			default:
				fmt.Println(t.Format())
			}
		}
	}
	emitErr := func(err error, ts ...*doppelganger.Table) {
		if err != nil {
			fail(err)
		}
		emit(ts...)
	}
	ran := 0
	for _, name := range order {
		if !want[name] {
			continue
		}
		ran++
		switch name {
		case "table2":
			t, err := ev.Table2()
			emitErr(err, t)
		case "fig2":
			t, err := ev.Fig2()
			emitErr(err, t)
		case "fig7":
			t, err := ev.Fig7()
			emitErr(err, t)
		case "fig8":
			t, err := ev.Fig8()
			emitErr(err, t)
		case "fig9":
			a, b, err := ev.Fig9()
			emitErr(err, a, b)
		case "fig10":
			a, b, err := ev.Fig10()
			emitErr(err, a, b)
		case "fig11":
			a, b, err := ev.Fig11()
			emitErr(err, a, b)
		case "fig12":
			t, err := ev.Fig12()
			emitErr(err, t)
		case "fig13":
			emit(ev.Fig13())
		case "fig14":
			a, b, c, err := ev.Fig14()
			emitErr(err, a, b, c)
		case "table3":
			emit(ev.Table3())
		case "extras":
			t, err := ev.Extras()
			emitErr(err, t)
		case "faults":
			t, err := ev.FaultSweep()
			emitErr(err, t)
		case "quality":
			a, b, err := ev.QualitySweep()
			emitErr(err, a, b)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched %v (known: %s, all)\n", args, strings.Join(order, ", "))
		os.Exit(2)
	}
	flush()
}
