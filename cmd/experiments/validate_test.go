package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	good, err := parseRates("1e-6, 1e-4,0.5")
	if err != nil || len(good) != 3 || good[0] != 1e-6 || good[2] != 0.5 {
		t.Fatalf("parseRates = %v, %v", good, err)
	}
	for _, s := range []string{"", "abc", "-1e-4", "1.5", "NaN", "1e-4,,1e-6", "1e-4,bogus"} {
		if _, err := parseRates(s); err == nil {
			t.Errorf("parseRates(%q) accepted", s)
		} else if !strings.Contains(err.Error(), "-fault-rate") {
			t.Errorf("parseRates(%q) error does not name the flag: %v", s, err)
		}
	}
}

func TestValidateOptions(t *testing.T) {
	ok := sweepOptions{Scale: 1, Retries: 2, QualityBudget: 0.05, CanaryRate: 0.05}
	if err := validateOptions(ok); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	// The -workers sentinel: 0 is legal as a default (one per CPU) but not
	// when asked for explicitly.
	if err := validateOptions(ok); err != nil {
		t.Errorf("default workers 0 rejected: %v", err)
	}
	bad := []struct {
		name string
		o    sweepOptions
		flag string
	}{
		{"zero scale", sweepOptions{QualityBudget: 0.05}, "-scale"},
		{"NaN scale", sweepOptions{Scale: math.NaN(), QualityBudget: 0.05}, "-scale"},
		{"explicit zero workers", sweepOptions{Scale: 1, Workers: 0, WorkersSet: true, QualityBudget: 0.05}, "-workers"},
		{"negative workers", sweepOptions{Scale: 1, Workers: -2, WorkersSet: true, QualityBudget: 0.05}, "-workers"},
		{"negative retries", sweepOptions{Scale: 1, Retries: -1, QualityBudget: 0.05}, "-retries"},
		{"zero budget", sweepOptions{Scale: 1}, "-quality-budget"},
		{"infinite budget", sweepOptions{Scale: 1, QualityBudget: math.Inf(1)}, "-quality-budget"},
		{"NaN budget", sweepOptions{Scale: 1, QualityBudget: math.NaN()}, "-quality-budget"},
		{"canary above one", sweepOptions{Scale: 1, QualityBudget: 0.05, CanaryRate: 1.5}, "-canary-rate"},
		{"negative canary", sweepOptions{Scale: 1, QualityBudget: 0.05, CanaryRate: -0.1}, "-canary-rate"},
		{"bad trace verify", sweepOptions{Scale: 1, QualityBudget: 0.05, TraceVerify: "paranoid"}, "-trace-verify"},
		{"negative decoded cache", sweepOptions{Scale: 1, QualityBudget: 0.05, DecodedCacheMB: -1}, "-decoded-cache-mb"},
		{"negative replay batch", sweepOptions{Scale: 1, QualityBudget: 0.05, ReplayBatch: -4}, "-replay-batch"},
	}
	for _, tc := range bad {
		err := validateOptions(tc.o)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error does not name %s: %v", tc.name, tc.flag, err)
		}
	}
}
