package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestInterruptResume is the end-to-end graceful-shutdown check: a run killed
// by SIGINT mid-sweep must exit 130 with its completed tasks checkpointed,
// and a -resume rerun must finish and print tables byte-identical to a run
// that was never interrupted.
func TestInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs simulations")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGINT delivery")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	// Flags must precede the experiment names (flag parsing stops at the
	// first positional argument).
	args := func(extra ...string) []string {
		a := []string{"-scale", "0.05", "-only", "kmeans", "-workers", "2", "-quiet"}
		a = append(a, extra...)
		return append(a, "table2", "fig9")
	}

	// Reference: the same sweep, never interrupted.
	want, err := exec.Command(bin, args()...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: SIGINT as soon as the first result hits the
	// checkpoint, while the rest of the grid is still in flight.
	cp := filepath.Join(dir, "cp.jsonl")
	cmd := exec.Command(bin, args("-checkpoint", cp)...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	interrupted := false
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case err := <-done:
			// Finished before we could interrupt (a very fast machine);
			// the run itself must still have succeeded.
			if err != nil {
				t.Fatalf("run failed before interrupt: %v", err)
			}
			break poll
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("no checkpoint record appeared within 2m")
		default:
		}
		if data, _ := os.ReadFile(cp); bytes.Contains(data, []byte("\n")) {
			cmd.Process.Signal(os.Interrupt)
			interrupted = true
			break poll
		}
		time.Sleep(2 * time.Millisecond)
	}
	if interrupted {
		err := <-done
		var exit *exec.ExitError
		switch {
		case err == nil:
			// The signal raced with completion; nothing was cut short.
			t.Log("run completed before the signal landed")
		case errors.As(err, &exit) && exit.ExitCode() == 130:
			// Interrupted as intended: partial checkpoint, exit 130.
		default:
			t.Fatalf("interrupted run exited %v, want 130", err)
		}
	}
	if fi, err := os.Stat(cp); err != nil || fi.Size() == 0 {
		t.Fatalf("interrupt did not flush the checkpoint: %v", err)
	}

	// Resume: must complete the remaining tasks and render the exact
	// bytes the uninterrupted run produced.
	got, err := exec.Command(bin, args("-checkpoint", cp, "-resume")...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output diverged:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
}
