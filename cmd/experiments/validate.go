package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// parseRates parses a comma-separated -fault-rate list. Every entry must be
// a finite probability in [0,1]; NaN — which ParseFloat happily accepts — is
// rejected explicitly.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad -fault-rate entry %q (want a probability in [0,1])", strings.TrimSpace(f))
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// sweepOptions are the numeric flags validateOptions checks. The *Set fields
// report whether the user supplied the flag explicitly (via flag.Visit), so
// sentinel defaults (-workers 0 = one per CPU) stay legal while explicitly
// requested nonsense is rejected with an actionable message.
type sweepOptions struct {
	Scale         float64
	Workers       int
	WorkersSet    bool
	Retries       int
	QualityBudget float64
	CanaryRate    float64
	TraceDir      string
	TraceCapture  bool
	TraceReplay   bool
}

// validateOptions rejects flag combinations that would otherwise fail
// obscurely mid-sweep (or worse, silently misbehave).
func validateOptions(o sweepOptions) error {
	if math.IsNaN(o.Scale) || o.Scale <= 0 {
		return fmt.Errorf("-scale must be a positive number, got %v", o.Scale)
	}
	if o.WorkersSet && o.Workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (omit the flag for one worker per CPU), got %d", o.Workers)
	}
	if o.Retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.Retries)
	}
	if math.IsNaN(o.QualityBudget) || math.IsInf(o.QualityBudget, 0) || o.QualityBudget <= 0 {
		return fmt.Errorf("-quality-budget must be a positive finite error fraction (e.g. 0.05), got %v", o.QualityBudget)
	}
	if math.IsNaN(o.CanaryRate) || o.CanaryRate < 0 || o.CanaryRate > 1 {
		return fmt.Errorf("-canary-rate must be a probability in [0,1], got %v", o.CanaryRate)
	}
	if (o.TraceCapture || o.TraceReplay) && o.TraceDir == "" {
		return fmt.Errorf("-trace-capture and -trace-replay require -trace-dir")
	}
	if o.TraceCapture && o.TraceReplay {
		return fmt.Errorf("-trace-capture and -trace-replay are mutually exclusive (capture re-records, replay forbids recording)")
	}
	return nil
}
