package main

import "doppelganger/internal/flagcheck"

// parseRates parses a comma-separated -fault-rate list (see
// flagcheck.Rates: finite probabilities in [0,1], NaN rejected explicitly).
func parseRates(s string) ([]float64, error) {
	return flagcheck.Rates("-fault-rate", s)
}

// sweepOptions are the numeric flags validateOptions checks. The *Set fields
// report whether the user supplied the flag explicitly (via flag.Visit), so
// sentinel defaults (-workers 0 = one per CPU) stay legal while explicitly
// requested nonsense is rejected with an actionable message.
type sweepOptions struct {
	Scale          float64
	Workers        int
	WorkersSet     bool
	Retries        int
	QualityBudget  float64
	CanaryRate     float64
	TraceDir       string
	TraceCapture   bool
	TraceReplay    bool
	TraceVerify    string
	DecodedCacheMB int
	ReplayBatch    int
}

// validateOptions rejects flag combinations that would otherwise fail
// obscurely mid-sweep (or worse, silently misbehave). The checks themselves
// live in internal/flagcheck, shared with doppelsim and sweepd.
func validateOptions(o sweepOptions) error {
	return flagcheck.First(
		flagcheck.PositiveScale("-scale", o.Scale),
		flagcheck.Workers("-workers", o.WorkersSet, o.Workers),
		flagcheck.NonNegative("-retries", o.Retries),
		flagcheck.PositiveFraction("-quality-budget", "e.g. 0.05", o.QualityBudget),
		flagcheck.Probability("-canary-rate", o.CanaryRate),
		flagcheck.TraceFlags(o.TraceDir, o.TraceCapture, o.TraceReplay),
		flagcheck.TraceVerify("-trace-verify", o.TraceVerify),
		flagcheck.NonNegative("-decoded-cache-mb", o.DecodedCacheMB),
		flagcheck.NonNegative("-replay-batch", o.ReplayBatch),
	)
}
