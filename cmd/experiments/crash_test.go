package main

import (
	"bytes"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCrashRecoveryByteIdentical is the crash-consistency check for the
// persistent trace store: a recording run is SIGKILLed at randomized points
// — no cleanup, no signal handler, the hardest possible stop — and the next
// run over the same directory must still finish and print tables
// byte-identical to a run that never touched a trace directory. The
// startup scrub sweeps whatever the kill left behind (an orphaned temp, a
// half-populated directory); the atomic-write protocol guarantees no
// visible capture is ever torn.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs simulations")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGKILL delivery")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	traceDir := filepath.Join(dir, "traces")
	args := func(extra ...string) []string {
		a := []string{"-scale", "0.05", "-only", "kmeans", "-workers", "2", "-quiet"}
		a = append(a, extra...)
		return append(a, "table2")
	}

	// Reference: no trace directory in the loop.
	want, err := exec.Command(bin, args()...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Kill recording runs at random points; some die before recording
	// anything, some mid-write, some after finishing (the kill misses).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		cmd := exec.Command(bin, args("-trace-dir", traceDir)...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		delay := time.Duration(rng.Intn(1500)) * time.Millisecond
		time.Sleep(delay)
		cmd.Process.Kill()
		cmd.Wait()
		t.Logf("kill %d after %v", i, delay)
	}

	// Recovery: the scrub runs at startup (default -trace-verify=open), the
	// sweep replays what survived and re-records what didn't, and the tables
	// must not differ by a byte.
	got, err := exec.Command(bin, args("-trace-dir", traceDir)...).Output()
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovery output diverged:\n--- clean ---\n%s\n--- recovered ---\n%s", want, got)
	}
	ents, err := os.ReadDir(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("orphan temp survived recovery: %s", e.Name())
		}
	}
	// And a warm replay over the recovered directory still matches.
	warm, err := exec.Command(bin, args("-trace-dir", traceDir)...).Output()
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !bytes.Equal(warm, want) {
		t.Fatalf("warm replay diverged after recovery:\n--- clean ---\n%s\n--- warm ---\n%s", want, warm)
	}
	// Same again through the decoded-capture cache and batched replay.
	batched, err := exec.Command(bin, args("-trace-dir", traceDir, "-decoded-cache-mb", "64", "-replay-batch", "8")...).Output()
	if err != nil {
		t.Fatalf("batched warm run: %v", err)
	}
	if !bytes.Equal(batched, want) {
		t.Fatalf("batched replay diverged:\n--- clean ---\n%s\n--- batched ---\n%s", want, batched)
	}
}
