// Command sweepd serves the simulation sweep as a fault-tolerant HTTP
// service.
//
// Usage:
//
//	sweepd -scale 0.1 [-addr :8734] [-shards 2] [-shard-workers 2]
//	sweepd -checkpoint run.jsonl -state drain.json [-resume]
//	sweepd -trace-dir traces [-trace-replay] ...
//
// Jobs are single sweep cells (POST /v1/jobs, see internal/server); the
// server shards them over worker pools by consistent hashing, memoizes
// results by content hash, sheds load with 429 + Retry-After when the token
// bucket or queue budget runs dry, and quarantines misbehaving shards behind
// circuit breakers.
//
// On SIGTERM/SIGINT the server drains: admission closes (503), in-flight
// jobs get up to -drain-timeout to finish (every completed result is already
// in the -checkpoint file), the leftover cells are snapshotted to -state,
// and the process exits 0. A later run with -resume primes every shard from
// the checkpoint and re-submits the snapshotted cells — the combined output
// is byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"doppelganger/internal/faults"
	"doppelganger/internal/quality"
	"doppelganger/internal/server"
	"doppelganger/internal/sweep"
	"doppelganger/internal/trace"
)

func main() {
	var (
		addr  = flag.String("addr", ":8734", "listen address (use :0 for an ephemeral port; the chosen address is printed)")
		scale = flag.Float64("scale", 1, "workload scale (1 = paper-size working sets)")
		cores = flag.Int("cores", 4, "CMP size for timing simulations")
		only  = flag.String("only", "", "comma-separated benchmark subset")
		quiet = flag.Bool("quiet", false, "suppress progress logging")

		shards       = flag.Int("shards", 2, "worker pools (each with an isolated runner and its own circuit breaker)")
		shardWorkers = flag.Int("shard-workers", 2, "goroutines per shard")
		queueDepth   = flag.Int("queue-depth", 64, "buffered jobs per shard")
		maxQueue     = flag.Int("max-queue", 0, "global queued-job budget before shedding (0 = shards x queue-depth)")

		admitRate  = flag.Float64("admit-rate", 2000, "admission token-bucket refill rate (jobs/s)")
		admitBurst = flag.Float64("admit-burst", 1000, "admission token-bucket burst")

		jobTimeout   = flag.Duration("job-timeout", 120*time.Second, "per-job deadline, retries included")
		retries      = flag.Int("retries", 2, "re-dispatches per failed job, with exponential backoff")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, capped at 2s)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "re-dispatch a silent job onto the next shard after this long (0 = off)")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before snapshotting them")
		statePath    = flag.String("state", "", "drain state file: pending cells land here on SIGTERM, -resume re-submits them")
		checkpoint   = flag.String("checkpoint", "", "persist completed results to this JSONL file as they finish")
		resume       = flag.Bool("resume", false, "prime shards from -checkpoint and re-submit the -state cells at startup")

		faultSeed  = flag.Uint64("seed", 1, "global fault-injection seed; results are deterministic in it at any shard count")
		faultModel = flag.String("fault-model", "flip", "fault manifestation: flip, stuck0, stuck1")

		qualityBudget = flag.Float64("quality-budget", 0.05, "quality-guard output-error budget")
		canaryRate    = flag.Float64("canary-rate", 0.05, "quality-guard canary sampling rate")
		qualitySeed   = flag.Uint64("quality-seed", 1, "global canary-sampling seed")

		breakerBudget = flag.Float64("breaker-budget", 0.5, "per-shard circuit-breaker failure budget in (0,1)")
		breakerCool   = flag.Uint64("breaker-cooldown", 0, "breaker cooldown in denied requests (0 = library default)")

		traceDir     = flag.String("trace-dir", "", "persistent trace-cache directory (record on first run, replay after)")
		traceCapture = flag.Bool("trace-capture", false, "force re-recording captures in -trace-dir")
		traceReplay  = flag.Bool("trace-replay", false, "forbid kernel execution: fail any cell without a valid capture")
		traceVerify  = flag.String("trace-verify", "open", "startup scrub strictness for -trace-dir: off (sweep temp files only), open (verify each capture's digest), full (fully decode each capture)")

		decodedCacheMB = flag.Int("decoded-cache-mb", 256, "in-memory decoded-capture cache budget shared by all shards, MB (0 disables; needs -trace-dir)")
		replayBatch    = flag.Int("replay-batch", 8, "max identical-stream quality cells replayed per single-pass walk (<=1 disables batching)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(2)
	}
	if err := validateOptions(sweepdOptions{
		Scale:          *scale,
		Cores:          *cores,
		Shards:         *shards,
		ShardWorkers:   *shardWorkers,
		QueueDepth:     *queueDepth,
		MaxQueue:       *maxQueue,
		AdmitRate:      *admitRate,
		AdmitBurst:     *admitBurst,
		JobTimeout:     *jobTimeout,
		RetryBackoff:   *retryBackoff,
		HedgeAfter:     *hedgeAfter,
		DrainTimeout:   *drainTimeout,
		Retries:        *retries,
		QualityBudget:  *qualityBudget,
		CanaryRate:     *canaryRate,
		TraceDir:       *traceDir,
		TraceCapture:   *traceCapture,
		TraceReplay:    *traceReplay,
		TraceVerify:    *traceVerify,
		DecodedCacheMB: *decodedCacheMB,
		ReplayBatch:    *replayBatch,
		Resume:         *resume,
		StatePath:      *statePath,
		Checkpoint:     *checkpoint,
	}); err != nil {
		fail(err)
	}
	model, err := faults.ParseModel(*faultModel)
	if err != nil {
		fail(err)
	}
	verifyMode, err := trace.ParseVerifyMode(*traceVerify)
	if err != nil {
		fail(err)
	}

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
	}

	var cp *sweep.Checkpoint
	if *checkpoint != "" {
		cp, err = sweep.OpenCheckpoint(*checkpoint, *resume)
		if err != nil {
			fail(err)
		}
		for _, w := range cp.Warnings() {
			logf("checkpoint: %s", w)
		}
		if *resume && cp.Len() > 0 {
			logf("resumed %d checkpointed result(s) from %s", cp.Len(), *checkpoint)
		}
	}

	cfg := server.Config{
		Scale:          *scale,
		Cores:          *cores,
		Shards:         *shards,
		ShardWorkers:   *shardWorkers,
		QueueDepth:     *queueDepth,
		MaxQueue:       *maxQueue,
		AdmitRate:      *admitRate,
		AdmitBurst:     *admitBurst,
		JobTimeout:     *jobTimeout,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		HedgeAfter:     *hedgeAfter,
		DrainTimeout:   *drainTimeout,
		StatePath:      *statePath,
		Breaker:        quality.BreakerConfig{Budget: *breakerBudget, Cooldown: *breakerCool},
		FaultSeed:      *faultSeed,
		FaultModel:     model,
		QualityBudget:  *qualityBudget,
		QualitySeed:    *qualitySeed,
		CanaryRate:     *canaryRate,
		TraceDir:       *traceDir,
		TraceCapture:   *traceCapture,
		TraceReplay:    *traceReplay,
		TraceVerify:    verifyMode,
		DecodedCacheMB: *decodedCacheMB,
		ReplayBatch:    *replayBatch,
		Checkpoint:     cp,
		Log:            logw,
	}
	if *only != "" {
		cfg.Only = strings.Split(*only, ",")
	}
	s, err := server.New(cfg)
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The listening line goes to stdout so harnesses (and humans) can scrape
	// the resolved address when -addr was :0.
	fmt.Printf("sweepd: listening on %s\n", ln.Addr())

	// Resume: re-submit the drained cells in the background (SubmitLocal
	// skips admission — resumed work must never be shed). Cells whose results
	// are already in the checkpoint complete instantly from the primed memo.
	if *resume && *statePath != "" {
		if cells, err := server.LoadState(*statePath); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				fail(err)
			}
		} else if len(cells) > 0 {
			logf("resuming %d pending cell(s) from %s", len(cells), *statePath)
			go func() {
				for _, c := range cells {
					if _, err := s.SubmitLocal(context.Background(), c); err != nil {
						logf("resume %s: %v", c.Key(), err)
					}
				}
				logf("resume complete")
			}()
		}
	}

	hs := &http.Server{Handler: s.Handler()}

	// SIGTERM/SIGINT: drain (stop admission, finish in-flight within
	// -drain-timeout, snapshot stragglers to -state), then shut the listener
	// down so Serve returns and the process can exit 0.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logf("%v: draining (timeout %v)", sig, *drainTimeout)
		left, err := s.Drain(context.Background())
		if err != nil {
			logf("drain: %v", err)
		}
		if len(left) > 0 {
			logf("drain: %d cell(s) still pending, snapshotted to %s", len(left), *statePath)
		} else {
			logf("drain: all in-flight jobs completed")
		}
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shctx)
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sweepd: serve: %v\n", err)
		os.Exit(1)
	}
	s.Close()
	if cp != nil {
		if err := cp.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: checkpoint: %v\n", err)
			os.Exit(1)
		}
	}
	logf("exit 0")
}
