package main

import (
	"errors"
	"time"

	"doppelganger/internal/flagcheck"
)

var errResumeNeedsFile = errors.New("-resume requires -state and/or -checkpoint (nothing to resume from)")

// sweepdOptions carries the flag values validateOptions checks before the
// server starts: every rejection here is a config that would otherwise fail
// obscurely mid-serve (or silently simulate the wrong thing).
type sweepdOptions struct {
	Scale          float64
	Cores          int
	Shards         int
	ShardWorkers   int
	QueueDepth     int
	MaxQueue       int
	AdmitRate      float64
	AdmitBurst     float64
	JobTimeout     time.Duration
	RetryBackoff   time.Duration
	HedgeAfter     time.Duration
	DrainTimeout   time.Duration
	Retries        int
	QualityBudget  float64
	CanaryRate     float64
	TraceDir       string
	TraceCapture   bool
	TraceReplay    bool
	TraceVerify    string
	DecodedCacheMB int
	ReplayBatch    int
	Resume         bool
	StatePath      string
	Checkpoint     string
}

func validateOptions(o sweepdOptions) error {
	if err := flagcheck.First(
		flagcheck.PositiveScale("-scale", o.Scale),
		flagcheck.AtLeast("-cores", o.Cores, 1),
		flagcheck.AtLeast("-shards", o.Shards, 1),
		flagcheck.AtLeast("-shard-workers", o.ShardWorkers, 1),
		flagcheck.AtLeast("-queue-depth", o.QueueDepth, 1),
		flagcheck.NonNegative("-max-queue", o.MaxQueue),
		flagcheck.PositiveScale("-admit-rate", o.AdmitRate),
		flagcheck.PositiveScale("-admit-burst", o.AdmitBurst),
		flagcheck.PositiveDuration("-job-timeout", o.JobTimeout),
		flagcheck.PositiveDuration("-retry-backoff", o.RetryBackoff),
		flagcheck.PositiveDuration("-drain-timeout", o.DrainTimeout),
		flagcheck.NonNegative("-retries", o.Retries),
		flagcheck.PositiveFraction("-quality-budget", "e.g. 0.05", o.QualityBudget),
		flagcheck.Probability("-canary-rate", o.CanaryRate),
		flagcheck.TraceFlags(o.TraceDir, o.TraceCapture, o.TraceReplay),
		flagcheck.TraceVerify("-trace-verify", o.TraceVerify),
		flagcheck.NonNegative("-decoded-cache-mb", o.DecodedCacheMB),
		flagcheck.NonNegative("-replay-batch", o.ReplayBatch),
	); err != nil {
		return err
	}
	if o.HedgeAfter < 0 {
		return errors.New("-hedge-after must be non-negative (0 disables hedging)")
	}
	if o.Resume && o.StatePath == "" && o.Checkpoint == "" {
		return errResumeNeedsFile
	}
	return nil
}
