package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// e2eCells is the job grid the end-to-end test pushes through a real sweepd
// process: one benchmark, every per-cell kind.
var e2eCells = []map[string]interface{}{
	{"kind": "baseline-timing", "bench": "kmeans"},
	{"kind": "split-error", "bench": "kmeans", "m": 14, "frac": 0.25},
	{"kind": "split-timing", "bench": "kmeans", "m": 14, "frac": 0.25},
	{"kind": "split-error", "bench": "kmeans", "m": 10, "frac": 0.5},
	{"kind": "uni-error", "bench": "kmeans", "m": 14, "frac": 0.5},
	{"kind": "fault-error", "bench": "kmeans", "org": "doppel", "rate": 1e-4},
	{"kind": "quality-error", "bench": "kmeans", "org": "doppel", "rate": 1e-4},
	{"kind": "quality-timing", "bench": "kmeans", "org": "doppel", "rate": 1e-4, "guarded": true},
}

// sweepdProc is one running sweepd under test: its process, resolved address
// and exit channel.
type sweepdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

// startSweepd launches the built binary on an ephemeral port and scrapes the
// resolved address from the listening line.
func startSweepd(t *testing.T, bin string, extra ...string) *sweepdProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-scale", "0.02", "-only", "kmeans", "-quiet",
		"-shards", "2", "-shard-workers", "1",
		"-seed", "5", "-quality-seed", "7",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "sweepd: listening on "); ok {
				addrC <- rest
			}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case addr := <-addrC:
		return &sweepdProc{cmd: cmd, addr: addr, done: done}
	case err := <-done:
		t.Fatalf("sweepd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("sweepd never printed its listening line")
	}
	return nil
}

// terminate sends SIGTERM and requires a clean (exit 0) drain.
func (p *sweepdProc) terminate(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("sweepd exited %v after SIGTERM, want 0", err)
		}
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("sweepd did not exit within 60s of SIGTERM")
	}
}

// submit POSTs one cell and returns (key, payload bytes). Non-200 responses
// come back as errors carrying the status and body.
func (p *sweepdProc) submit(cell map[string]interface{}) (string, []byte, error) {
	body, err := json.Marshal(cell)
	if err != nil {
		return "", nil, err
	}
	resp, err := http.Post("http://"+p.addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var res struct {
		Key     string          `json:"key"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return "", nil, err
	}
	return res.Key, res.Payload, nil
}

// TestDrainResumeByteIdentical is the end-to-end graceful-shutdown proof: a
// sweepd SIGTERMed mid-load must exit 0 with completed results checkpointed
// and pending cells snapshotted to the state file, and a -resume server over
// those files must answer every cell byte-identically to a server that was
// never interrupted.
func TestDrainResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs simulations")
	}
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGTERM delivery")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sweepd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reference: every cell through an uninterrupted server.
	want := map[string][]byte{}
	ref := startSweepd(t, bin)
	for _, cell := range e2eCells {
		key, payload, err := ref.submit(cell)
		if err != nil {
			t.Fatalf("reference submit %v: %v", cell, err)
		}
		want[key] = payload
	}
	ref.terminate(t)

	// Interrupted run: fire the whole grid concurrently, SIGTERM as soon as
	// the first response lands (the rest are still queued or in flight on the
	// single-worker shards). A short drain timeout forces a real snapshot of
	// the stragglers instead of waiting them out.
	cp := filepath.Join(dir, "cp.jsonl")
	state := filepath.Join(dir, "state.json")
	victim := startSweepd(t, bin, "-checkpoint", cp, "-state", state, "-drain-timeout", "50ms")
	first := make(chan struct{})
	var firstOnce sync.Once
	var wg sync.WaitGroup
	for _, cell := range e2eCells {
		wg.Add(1)
		go func(cell map[string]interface{}) {
			defer wg.Done()
			// Errors are expected here: drain aborts stragglers (5xx) — their
			// cells are in the state file, which is the point.
			if _, _, err := victim.submit(cell); err == nil {
				firstOnce.Do(func() { close(first) })
			}
		}(cell)
	}
	select {
	case <-first:
	case <-time.After(60 * time.Second):
		t.Fatal("no submission completed within 60s")
	}
	victim.cmd.Process.Signal(syscall.SIGTERM)
	wg.Wait()
	select {
	case err := <-victim.done:
		if err != nil {
			t.Fatalf("interrupted sweepd exited %v, want 0 (graceful drain)", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("interrupted sweepd did not exit")
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("drain wrote no state file: %v", err)
	}
	if fi, err := os.Stat(cp); err != nil || fi.Size() == 0 {
		t.Fatalf("drain flushed no checkpoint: %v", err)
	}
	var snapshot struct {
		Pending []json.RawMessage `json:"pending"`
	}
	if b, err := os.ReadFile(state); err != nil || json.Unmarshal(b, &snapshot) != nil {
		t.Fatalf("state file unreadable: %v", err)
	}
	t.Logf("drained with %d pending cell(s) snapshotted", len(snapshot.Pending))

	// Resume: the server primes from the checkpoint and re-submits the
	// snapshotted cells itself; every cell must answer with the reference
	// run's exact bytes.
	res := startSweepd(t, bin, "-checkpoint", cp, "-state", state, "-resume")
	for _, cell := range e2eCells {
		key, payload, err := res.submit(cell)
		if err != nil {
			t.Fatalf("resumed submit %v: %v", cell, err)
		}
		if !bytes.Equal(payload, want[key]) {
			t.Fatalf("cell %s: resumed payload diverged\n  reference: %s\n  resumed:   %s", key, want[key], payload)
		}
	}
	res.terminate(t)
}

// TestValidateOptions covers the flag guards unique to sweepd.
func TestValidateOptions(t *testing.T) {
	good := sweepdOptions{
		Scale: 0.1, Cores: 4, Shards: 2, ShardWorkers: 2, QueueDepth: 64,
		AdmitRate: 100, AdmitBurst: 10, JobTimeout: time.Minute,
		RetryBackoff: time.Millisecond, DrainTimeout: time.Second,
		QualityBudget: 0.05, CanaryRate: 0.05,
	}
	if err := validateOptions(good); err != nil {
		t.Fatalf("good options rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*sweepdOptions)
		want   string
	}{
		{"scale", func(o *sweepdOptions) { o.Scale = 0 }, "-scale"},
		{"shards", func(o *sweepdOptions) { o.Shards = 0 }, "-shards"},
		{"workers", func(o *sweepdOptions) { o.ShardWorkers = 0 }, "-shard-workers"},
		{"queue", func(o *sweepdOptions) { o.QueueDepth = 0 }, "-queue-depth"},
		{"retries", func(o *sweepdOptions) { o.Retries = -1 }, "-retries"},
		{"job timeout", func(o *sweepdOptions) { o.JobTimeout = 0 }, "-job-timeout"},
		{"drain timeout", func(o *sweepdOptions) { o.DrainTimeout = -time.Second }, "-drain-timeout"},
		{"hedge", func(o *sweepdOptions) { o.HedgeAfter = -time.Second }, "-hedge-after"},
		{"canary", func(o *sweepdOptions) { o.CanaryRate = 1.5 }, "-canary-rate"},
		{"trace replay without dir", func(o *sweepdOptions) { o.TraceReplay = true }, "-trace-dir"},
		{"bad trace verify", func(o *sweepdOptions) { o.TraceVerify = "sometimes" }, "-trace-verify"},
		{"negative decoded cache", func(o *sweepdOptions) { o.DecodedCacheMB = -1 }, "-decoded-cache-mb"},
		{"negative replay batch", func(o *sweepdOptions) { o.ReplayBatch = -8 }, "-replay-batch"},
		{"resume without files", func(o *sweepdOptions) { o.Resume = true }, "-resume"},
	}
	for _, tc := range bad {
		o := good
		tc.mutate(&o)
		err := validateOptions(o)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if !errors.Is(func() error { o := good; o.Resume = true; return validateOptions(o) }(), errResumeNeedsFile) {
		t.Error("resume without files: wrong error identity")
	}
}
