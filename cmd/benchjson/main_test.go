package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseAggregatesRepeats(t *testing.T) {
	in := `goos: linux
BenchmarkTable2-8  2  100 ns/op  64 B/op  3 allocs/op
BenchmarkTable2-8  2  120 ns/op  64 B/op  3 allocs/op
BenchmarkTable2-8  2  110 ns/op  64 B/op  3 allocs/op
BenchmarkFig2-8    1  500 ns/op
PASS
`
	samples, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples["Table2"]) != 3 || len(samples["Fig2"]) != 1 {
		t.Fatalf("sample counts: Table2 %d, Fig2 %d", len(samples["Table2"]), len(samples["Fig2"]))
	}
	agg := aggregate(samples["Table2"])
	if agg.Repeats != 3 || math.Abs(agg.NsPerOp-110) > 1e-9 {
		t.Fatalf("aggregate = %+v, want mean 110 over 3 repeats", agg)
	}
	// Population stddev of {100, 120, 110} around 110 is sqrt(200/3).
	if want := math.Sqrt(200.0 / 3.0); math.Abs(agg.NsStddev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", agg.NsStddev, want)
	}
	if single := aggregate(samples["Fig2"]); single.NsStddev != 0 || single.Repeats != 1 {
		t.Fatalf("single sample aggregate = %+v, want no stddev", single)
	}
}

func TestWithinNoise(t *testing.T) {
	mk := func(mean, stddev float64, repeats int) result {
		return result{NsPerOp: mean, NsStddev: stddev, Repeats: repeats}
	}
	cases := []struct {
		name      string
		cur, base result
		want      bool
	}{
		// 1% apparent speedup under 5% per-side spread: noise.
		{"noisy small delta", mk(100, 5, 5), mk(101, 5, 5), true},
		// 2x speedup under the same spread: real.
		{"large delta", mk(100, 5, 5), mk(200, 5, 5), false},
		// Single samples: the 2% floor applies, so 3% is within 2*combined
		// (~5.7%) but 20% is not.
		{"single samples small", mk(100, 0, 1), mk(103, 0, 1), true},
		{"single samples large", mk(100, 0, 1), mk(120, 0, 1), false},
		// Tight repeats resolve deltas the single-sample floor cannot.
		{"tight spread resolves", mk(100, 0.5, 10), mk(103, 0.5, 10), false},
	}
	for _, tc := range cases {
		if got := withinNoise(tc.cur, tc.base); got != tc.want {
			t.Errorf("%s: withinNoise = %v, want %v", tc.name, got, tc.want)
		}
	}
}
