// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON report, optionally joining a baseline run captured
// with the same flags so speedup ratios travel with the numbers.
//
// Usage:
//
//	go test -bench 'Evaluation...' -benchmem . | benchjson -o BENCH.json
//	benchjson -baseline old.txt -benchtime 2x -count 5 -o BENCH.json current.txt
//
// Input lines it understands look like:
//
//	BenchmarkTable2  2  1158404084 ns/op  258907864 B/op  127411 allocs/op
//
// Everything else (goos/goarch headers, PASS/ok trailers) is ignored, so the
// raw `go test` output can be piped straight in.
//
// Repeated names (from -count > 1) aggregate into mean and standard
// deviation rather than keeping the last line. When a baseline is joined,
// each entry's speedup is checked against the run-to-run noise of both
// samples: a row whose |speedup - 1| is within two combined relative
// standard deviations is flagged "within_noise" — a reminder that the
// difference is not evidence. Single-sample runs fall back to a 2% noise
// floor per side.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's aggregated numbers: means over the repeats, plus
// the ns/op spread when there was more than one.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsStddev    float64 `json:"ns_stddev,omitempty"`
	Repeats     int     `json:"repeats,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// entry is one benchmark in the report: the current numbers, the baseline's
// (when provided), and the resulting ratios (>1 means the current run is
// better: faster, or fewer allocations/bytes). WithinNoise marks speedups
// indistinguishable from run-to-run variance.
type entry struct {
	Name string `json:"name"`
	result
	Baseline    *result `json:"baseline,omitempty"`
	NsSpeedup   float64 `json:"ns_speedup,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`
	WithinNoise bool    `json:"within_noise,omitempty"`
}

type report struct {
	Note       string  `json:"note"`
	Benchtime  string  `json:"benchtime,omitempty"`
	Count      int     `json:"count,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "", "prior -bench output to join as the baseline")
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form provenance note stored in the report")
	benchtime := flag.String("benchtime", "", "the -benchtime the run used (recorded in the report)")
	count := flag.Int("count", 0, "the -count the run used (recorded in the report)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	baseline := map[string]result{}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		samples, err := parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for name, s := range samples {
			baseline[name] = aggregate(s)
		}
	}

	rep := report{Note: *note, Benchtime: *benchtime, Count: *count}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := aggregate(current[name])
		e := entry{Name: name, result: cur}
		if b, ok := baseline[name]; ok {
			bb := b
			e.Baseline = &bb
			e.NsSpeedup = ratio(b.NsPerOp, cur.NsPerOp)
			e.AllocsRatio = ratio(b.AllocsPerOp, cur.AllocsPerOp)
			e.BytesRatio = ratio(b.BytesPerOp, cur.BytesPerOp)
			e.WithinNoise = withinNoise(cur, b)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// aggregate folds one benchmark's repeats into means plus the ns/op
// standard deviation (population; a noise estimate, not an inference).
func aggregate(samples []result) result {
	n := float64(len(samples))
	var agg result
	agg.Repeats = len(samples)
	for _, s := range samples {
		agg.NsPerOp += s.NsPerOp / n
		agg.BytesPerOp += s.BytesPerOp / n
		agg.AllocsPerOp += s.AllocsPerOp / n
	}
	if len(samples) > 1 {
		var ss float64
		for _, s := range samples {
			d := s.NsPerOp - agg.NsPerOp
			ss += d * d
		}
		agg.NsStddev = math.Sqrt(ss / n)
	}
	return agg
}

// noiseFloorRel is the assumed per-side relative noise when a sample has no
// spread information (a single repeat).
const noiseFloorRel = 0.02

// withinNoise reports whether |speedup - 1| is inside two combined relative
// standard deviations of the two samples — i.e. the measured difference
// could plausibly be run-to-run variance rather than a real change.
func withinNoise(cur, base result) bool {
	if cur.NsPerOp == 0 || base.NsPerOp == 0 {
		return false
	}
	rel := func(r result) float64 {
		if r.Repeats < 2 || r.NsStddev == 0 {
			return noiseFloorRel
		}
		return r.NsStddev / r.NsPerOp
	}
	combined := math.Hypot(rel(cur), rel(base))
	return math.Abs(base.NsPerOp/cur.NsPerOp-1) <= 2*combined
}

// ratio returns old/new rounded to two decimals, or 0 when undefined.
func ratio(old, new float64) float64 {
	if old == 0 || new == 0 {
		return 0
	}
	return float64(int(old/new*100+0.5)) / 100
}

// parse extracts benchmark samples from -bench output: every occurrence of a
// name (from -count > 1) is kept for aggregation.
func parse(r io.Reader) (map[string][]result, error) {
	out := map[string][]result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -cpu suffix (BenchmarkX-8) if present.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = append(out[name], res)
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
