// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON report, optionally joining a baseline run captured
// with the same flags so speedup ratios travel with the numbers.
//
// Usage:
//
//	go test -bench 'Evaluation...' -benchmem . | benchjson -o BENCH.json
//	benchjson -baseline old.txt -o BENCH.json current.txt
//
// Input lines it understands look like:
//
//	BenchmarkTable2  2  1158404084 ns/op  258907864 B/op  127411 allocs/op
//
// Everything else (goos/goarch headers, PASS/ok trailers) is ignored, so the
// raw `go test` output can be piped straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// entry is one benchmark in the report: the current numbers, the baseline's
// (when provided), and the resulting ratios (>1 means the current run is
// better: faster, or fewer allocations/bytes).
type entry struct {
	Name string `json:"name"`
	result
	Baseline    *result `json:"baseline,omitempty"`
	NsSpeedup   float64 `json:"ns_speedup,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`
}

type report struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "", "prior -bench output to join as the baseline")
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form provenance note stored in the report")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	var baseline map[string]result
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		baseline, err = parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	rep := report{Note: *note}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := entry{Name: name, result: current[name]}
		if b, ok := baseline[name]; ok {
			bb := b
			e.Baseline = &bb
			e.NsSpeedup = ratio(b.NsPerOp, e.NsPerOp)
			e.AllocsRatio = ratio(b.AllocsPerOp, e.AllocsPerOp)
			e.BytesRatio = ratio(b.BytesPerOp, e.BytesPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// ratio returns old/new rounded to two decimals, or 0 when undefined.
func ratio(old, new float64) float64 {
	if old == 0 || new == 0 {
		return 0
	}
	return float64(int(old/new*100+0.5)) / 100
}

// parse extracts benchmark results from -bench output. A repeated name (from
// -count > 1) keeps the last occurrence.
func parse(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -cpu suffix (BenchmarkX-8) if present.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
