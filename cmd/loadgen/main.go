// Command loadgen hammers a running sweepd with concurrent job submissions
// and reports client-side latency percentiles plus the server's own stats.
//
// Usage:
//
//	sweepd -scale 0.02 -only kmeans,inversek2j -addr :8734 &
//	loadgen -addr 127.0.0.1:8734 -n 10000 -c 512 -o BENCH_8.json
//
// The generator cycles a deterministic grid of sweep cells over the
// benchmarks in -benches, so most submissions hit the server's result memo —
// the realistic service pattern — while still forcing a spread of distinct
// simulations. 429 refusals are retried after the server's own Retry-After
// header (the admission contract); every other failure counts against the
// run. The output JSON records totals, latency percentiles (p50/p95/p99),
// throughput, and the server's /v1/stats snapshot at the end of the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// cell mirrors the server's job body (loadgen speaks only the wire format —
// it deliberately does not import the server package).
type cell struct {
	Kind  string  `json:"kind"`
	Bench string  `json:"bench,omitempty"`
	M     int     `json:"m,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	Org   string  `json:"org,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
}

// grid generates the i-th submission deterministically: benchmarks round-
// robin, kinds and parameters cycle at coprime strides so the same cell
// recurs (memo hits) without the stream ever being a single hot key.
func grid(benches []string, i int) cell {
	// Fracs must land the Doppelgänger data array on whole sets (entries
	// divisible by ways) or the server rejects the cell as bad geometry.
	ms := []int{8, 10, 12, 14, 16}
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 1}
	rates := []float64{1e-5, 1e-4, 1e-3}
	bench := benches[i%len(benches)]
	switch (i / 7) % 6 {
	case 0:
		return cell{Kind: "split-error", Bench: bench, M: ms[i%len(ms)], Frac: fracs[(i/3)%len(fracs)]}
	case 1:
		return cell{Kind: "uni-error", Bench: bench, M: ms[(i/2)%len(ms)], Frac: fracs[i%len(fracs)]}
	case 2:
		return cell{Kind: "split-timing", Bench: bench, M: ms[i%len(ms)], Frac: fracs[(i/5)%len(fracs)]}
	case 3:
		return cell{Kind: "baseline-timing", Bench: bench}
	case 4:
		return cell{Kind: "fault-error", Bench: bench, Org: "doppel", Rate: rates[i%len(rates)]}
	default:
		return cell{Kind: "quality-error", Bench: bench, Org: "doppel", Rate: rates[(i/2)%len(rates)]}
	}
}

// report is the output JSON schema (BENCH_8.json).
type report struct {
	Addr        string  `json:"addr"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Benches     string  `json:"benches"`
	Succeeded   int64   `json:"succeeded"`
	Failed      int64   `json:"failed"`
	ShedRetries int64   `json:"shed_retries"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMS   struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
		Mean float64 `json:"mean"`
	} `json:"latency_ms"`
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

// percentile reads the p-th percentile (0..100) from a sorted sample by the
// nearest-rank method; an empty sample reads 0.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// retryAfter parses a 429's Retry-After header, defaulting to 100ms — the
// client half of the admission contract.
func retryAfter(h http.Header) time.Duration {
	if secs, err := strconv.Atoi(h.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8734", "sweepd address")
		n       = flag.Int("n", 10000, "total submissions")
		c       = flag.Int("c", 512, "concurrent clients")
		benches = flag.String("benches", "kmeans,inversek2j", "benchmarks to spread cells over (must match the server's -only)")
		out     = flag.String("o", "", "write the report JSON here (default stdout)")
		retries = flag.Int("retries", 100, "429 retries per submission before counting it failed")
	)
	flag.Parse()
	if *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -n and -c must be at least 1")
		os.Exit(2)
	}

	bl := strings.Split(*benches, ",")
	client := &http.Client{Timeout: 5 * time.Minute}
	url := "http://" + *addr + "/v1/jobs"

	var succeeded, failed, shed atomic.Int64
	latencies := make([]float64, *n) // ms; index per submission, -1 = failed
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				body, _ := json.Marshal(grid(bl, i))
				t0 := time.Now()
				ok := false
				for attempt := 0; attempt <= *retries; attempt++ {
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						ok = true
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						break
					}
					shed.Add(1)
					time.Sleep(retryAfter(resp.Header))
				}
				if ok {
					succeeded.Add(1)
					latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				} else {
					failed.Add(1)
					latencies[i] = -1
				}
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	var sample []float64
	var sum float64
	for _, l := range latencies {
		if l >= 0 {
			sample = append(sample, l)
			sum += l
		}
	}
	sort.Float64s(sample)

	r := report{
		Addr:        *addr,
		Requests:    *n,
		Concurrency: *c,
		Benches:     *benches,
		Succeeded:   succeeded.Load(),
		Failed:      failed.Load(),
		ShedRetries: shed.Load(),
		WallSeconds: wall.Seconds(),
		Throughput:  float64(succeeded.Load()) / wall.Seconds(),
	}
	r.LatencyMS.P50 = percentile(sample, 50)
	r.LatencyMS.P95 = percentile(sample, 95)
	r.LatencyMS.P99 = percentile(sample, 99)
	r.LatencyMS.Max = percentile(sample, 100)
	if len(sample) > 0 {
		r.LatencyMS.Mean = sum / float64(len(sample))
	}
	if resp, err := client.Get("http://" + *addr + "/v1/stats"); err == nil {
		if b, err := io.ReadAll(resp.Body); err == nil {
			r.ServerStats = json.RawMessage(b)
		}
		resp.Body.Close()
	}

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if failed.Load() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d submission(s) failed\n", failed.Load())
		os.Exit(1)
	}
}
