package main

import (
	"net/http"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{50, 5}, {95, 10}, {99, 10}, {100, 10}, {0, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty sample percentile = %v, want 0", got)
	}
}

func TestRetryAfter(t *testing.T) {
	h := http.Header{}
	if d := retryAfter(h); d != 100*time.Millisecond {
		t.Errorf("missing header: %v, want 100ms default", d)
	}
	h.Set("Retry-After", "3")
	if d := retryAfter(h); d != 3*time.Second {
		t.Errorf("Retry-After 3: %v, want 3s", d)
	}
	h.Set("Retry-After", "garbage")
	if d := retryAfter(h); d != 100*time.Millisecond {
		t.Errorf("garbage header: %v, want 100ms default", d)
	}
}

// TestGridValidCells pins the generator to the server's wire grammar: every
// generated cell carries a kind the server accepts, with in-range parameters.
func TestGridValidCells(t *testing.T) {
	benches := []string{"kmeans", "inversek2j"}
	kinds := map[string]bool{}
	distinct := map[cell]bool{}
	for i := 0; i < 10000; i++ {
		c := grid(benches, i)
		kinds[c.Kind] = true
		distinct[c] = true
		if c.Bench == "" {
			t.Fatalf("cell %d has no bench", i)
		}
		switch c.Kind {
		case "split-error", "uni-error", "split-timing":
			if c.M < 1 || c.M > 32 || !(c.Frac > 0 && c.Frac <= 1) {
				t.Fatalf("cell %d out of range: %+v", i, c)
			}
		case "fault-error", "quality-error":
			if c.Org == "" || c.Rate <= 0 || c.Rate > 1 {
				t.Fatalf("cell %d out of range: %+v", i, c)
			}
		case "baseline-timing":
		default:
			t.Fatalf("cell %d has unknown kind %q", i, c.Kind)
		}
	}
	if len(kinds) != 6 {
		t.Errorf("generator exercised %d kinds, want 6", len(kinds))
	}
	// The stream must repeat cells (memo hits) while spreading real work.
	if len(distinct) < 50 || len(distinct) > 5000 {
		t.Errorf("distinct cells = %d, want a spread well below the stream length", len(distinct))
	}
}
