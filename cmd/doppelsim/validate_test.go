package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateOptions(t *testing.T) {
	ok := simOptions{Scale: 1, Cores: 4, MapBits: 14, DataFrac: 0.25, FaultRate: 1e-4, CanaryRate: 0.05}
	if err := validateOptions(ok); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	// The -quality-budget sentinel: the zero default means "guard off", but
	// an explicit non-positive budget is a mistake.
	if err := validateOptions(simOptions{Scale: 1, Cores: 1, MapBits: 14, QualityBudget: 0}); err != nil {
		t.Errorf("default zero budget rejected: %v", err)
	}
	withBudget := ok
	withBudget.QualityBudget, withBudget.QualityBudgetSet = 0.05, true
	if err := validateOptions(withBudget); err != nil {
		t.Errorf("explicit valid budget rejected: %v", err)
	}
	bad := []struct {
		name string
		o    simOptions
		flag string
	}{
		{"zero scale", simOptions{Cores: 1, MapBits: 14}, "-scale"},
		{"NaN scale", simOptions{Scale: math.NaN(), Cores: 1, MapBits: 14}, "-scale"},
		{"zero cores", simOptions{Scale: 1, MapBits: 14}, "-cores"},
		{"zero map bits", simOptions{Scale: 1, Cores: 1}, "-map"},
		{"huge map bits", simOptions{Scale: 1, Cores: 1, MapBits: 48}, "-map"},
		{"datafrac above one", simOptions{Scale: 1, Cores: 1, MapBits: 14, DataFrac: 1.5}, "-datafrac"},
		{"negative fault rate", simOptions{Scale: 1, Cores: 1, MapBits: 14, FaultRate: -1e-4}, "-fault-rate"},
		{"fault rate above one", simOptions{Scale: 1, Cores: 1, MapBits: 14, FaultRate: 2}, "-fault-rate"},
		{"NaN fault rate", simOptions{Scale: 1, Cores: 1, MapBits: 14, FaultRate: math.NaN()}, "-fault-rate"},
		{"explicit zero budget", simOptions{Scale: 1, Cores: 1, MapBits: 14, QualityBudget: 0, QualityBudgetSet: true}, "-quality-budget"},
		{"explicit negative budget", simOptions{Scale: 1, Cores: 1, MapBits: 14, QualityBudget: -0.05, QualityBudgetSet: true}, "-quality-budget"},
		{"infinite budget", simOptions{Scale: 1, Cores: 1, MapBits: 14, QualityBudget: math.Inf(1), QualityBudgetSet: true}, "-quality-budget"},
		{"canary above one", simOptions{Scale: 1, Cores: 1, MapBits: 14, CanaryRate: 2}, "-canary-rate"},
		{"NaN canary", simOptions{Scale: 1, Cores: 1, MapBits: 14, CanaryRate: math.NaN()}, "-canary-rate"},
		{"bad trace verify", simOptions{Scale: 1, Cores: 1, MapBits: 14, TraceVerify: "always"}, "-trace-verify"},
	}
	for _, tc := range bad {
		err := validateOptions(tc.o)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error does not name %s: %v", tc.name, tc.flag, err)
		}
	}
}
