package main

import "doppelganger/internal/flagcheck"

// simOptions are the numeric flags validateOptions checks. QualityBudgetSet
// reports whether -quality-budget was supplied explicitly (via flag.Visit):
// the default 0 legitimately means "guard off", but an explicit zero or
// negative budget is a configuration mistake worth rejecting loudly.
type simOptions struct {
	Scale            float64
	Cores            int
	MapBits          int
	DataFrac         float64
	FaultRate        float64
	QualityBudget    float64
	QualityBudgetSet bool
	CanaryRate       float64
	TraceDir         string
	TraceCapture     bool
	TraceReplay      bool
	TraceVerify      string
}

// validateOptions rejects flag values that would otherwise fail obscurely
// mid-run (or silently simulate something other than what was asked for).
// The checks themselves live in internal/flagcheck, shared with experiments
// and sweepd.
func validateOptions(o simOptions) error {
	var budgetErr error
	if o.QualityBudgetSet {
		budgetErr = flagcheck.PositiveFraction("-quality-budget",
			"e.g. 0.05; omit the flag to disable the guard", o.QualityBudget)
	}
	return flagcheck.First(
		flagcheck.PositiveScale("-scale", o.Scale),
		flagcheck.AtLeast("-cores", o.Cores, 1),
		flagcheck.IntRange("-map", o.MapBits, 1, 32, "bits"),
		flagcheck.Fraction("-datafrac", "0 = the organization's default", o.DataFrac),
		flagcheck.Probability("-fault-rate", o.FaultRate),
		budgetErr,
		flagcheck.Probability("-canary-rate", o.CanaryRate),
		flagcheck.TraceFlags(o.TraceDir, o.TraceCapture, o.TraceReplay),
		flagcheck.TraceVerify("-trace-verify", o.TraceVerify),
	)
}
