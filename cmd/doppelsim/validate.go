package main

import (
	"fmt"
	"math"
)

// simOptions are the numeric flags validateOptions checks. QualityBudgetSet
// reports whether -quality-budget was supplied explicitly (via flag.Visit):
// the default 0 legitimately means "guard off", but an explicit zero or
// negative budget is a configuration mistake worth rejecting loudly.
type simOptions struct {
	Scale            float64
	Cores            int
	MapBits          int
	DataFrac         float64
	FaultRate        float64
	QualityBudget    float64
	QualityBudgetSet bool
	CanaryRate       float64
	TraceDir         string
	TraceCapture     bool
	TraceReplay      bool
}

// validateOptions rejects flag values that would otherwise fail obscurely
// mid-run (or silently simulate something other than what was asked for).
func validateOptions(o simOptions) error {
	if math.IsNaN(o.Scale) || o.Scale <= 0 {
		return fmt.Errorf("-scale must be a positive number, got %v", o.Scale)
	}
	if o.Cores < 1 {
		return fmt.Errorf("-cores must be at least 1, got %d", o.Cores)
	}
	if o.MapBits < 1 || o.MapBits > 32 {
		return fmt.Errorf("-map must be between 1 and 32 bits, got %d", o.MapBits)
	}
	if math.IsNaN(o.DataFrac) || o.DataFrac < 0 || o.DataFrac > 1 {
		return fmt.Errorf("-datafrac must be a fraction in [0,1] (0 = the organization's default), got %v", o.DataFrac)
	}
	if math.IsNaN(o.FaultRate) || o.FaultRate < 0 || o.FaultRate > 1 {
		return fmt.Errorf("-fault-rate must be a probability in [0,1], got %v", o.FaultRate)
	}
	if o.QualityBudgetSet && (math.IsNaN(o.QualityBudget) || math.IsInf(o.QualityBudget, 0) || o.QualityBudget <= 0) {
		return fmt.Errorf("-quality-budget must be a positive finite error fraction (e.g. 0.05; omit the flag to disable the guard), got %v", o.QualityBudget)
	}
	if math.IsNaN(o.CanaryRate) || o.CanaryRate < 0 || o.CanaryRate > 1 {
		return fmt.Errorf("-canary-rate must be a probability in [0,1], got %v", o.CanaryRate)
	}
	if (o.TraceCapture || o.TraceReplay) && o.TraceDir == "" {
		return fmt.Errorf("-trace-capture and -trace-replay require -trace-dir")
	}
	if o.TraceCapture && o.TraceReplay {
		return fmt.Errorf("-trace-capture and -trace-replay are mutually exclusive (capture re-records, replay forbids recording)")
	}
	return nil
}
