// Command doppelsim runs one benchmark against one LLC organization and
// prints its functional statistics and output error.
//
// Usage:
//
//	doppelsim -bench jpeg -llc split -map 14 -datafrac 0.25 -scale 0.5
//	doppelsim -bench jmeint+kmeans -llc unified          # multiprogrammed
//	doppelsim -bench canneal -savetrace canneal.trace    # record a bundle
//	doppelsim -replay canneal.trace -llc split -map 12   # replay offline
//	doppelsim -bench jpeg -fault-rate 1e-4 -quality-budget 0.05   # guarded
//
// LLC organizations: baseline (conventional 2 MB), split (1 MB precise +
// Doppelgänger, the paper's primary design), unified (uniDoppelgänger).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"

	"doppelganger"
	"doppelganger/internal/faults"
	"doppelganger/internal/timesim"
	"doppelganger/internal/workloads"
)

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func main() {
	var (
		bench    = flag.String("bench", "jpeg", "benchmark (join with + to multiprogram): "+strings.Join(doppelganger.Benchmarks(), ", "))
		llc      = flag.String("llc", "split", "LLC organization: baseline, split, unified")
		mapBits  = flag.Int("map", 14, "map space size M in bits")
		dataFrac = flag.Float64("datafrac", 0, "data array fraction (default: 1/4 split, 1/2 unified)")
		scale    = flag.Float64("scale", 1, "workload scale (1 = paper-size working sets)")
		cores    = flag.Int("cores", 4, "number of cores")
		timing   = flag.Bool("timing", false, "also run the cycle-level timing comparison vs the baseline")
		saveTo   = flag.String("savetrace", "", "record the benchmark on the baseline LLC and save a replayable trace bundle to this file")
		replay   = flag.String("replay", "", "replay a saved trace bundle against the chosen LLC (skips functional execution)")

		faultRate  = flag.Float64("fault-rate", 0, "per-access fault-injection probability against the chosen LLC (0 disables)")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault-injection seed; the same seed reproduces the same fault sites")
		faultModel = flag.String("fault-model", "flip", "fault manifestation: flip, stuck0, stuck1")

		qualityBudget = flag.Float64("quality-budget", 0, "online quality-guard output-error budget; the guard degrades the Doppelgänger to precise behaviour when its error estimate exceeds it (0 disables)")
		canaryRate    = flag.Float64("canary-rate", 0.05, "quality-guard canary sampling rate (fraction of substitutions checked against the precise value)")
		qualitySeed   = flag.Uint64("quality-seed", 1, "canary-sampling seed; the same seed reproduces the same canary sites")

		traceDir     = flag.String("trace-dir", "", "persistent trace-cache directory: record each simulation's capture file on first run, replay it afterwards")
		traceCapture = flag.Bool("trace-capture", false, "force re-recording captures in -trace-dir even when valid ones exist")
		traceReplay  = flag.Bool("trace-replay", false, "forbid kernel execution: fail any simulation without a valid capture in -trace-dir")
		traceVerify  = flag.String("trace-verify", "open", "startup scrub strictness for -trace-dir: off (sweep temp files only), open (verify each capture's digest), full (fully decode each capture)")

		metricsOut = flag.String("metrics-out", "", "write the run's counter snapshot as JSONL to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace JSON (chrome://tracing) of the timing replays to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	budgetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "quality-budget" {
			budgetSet = true
		}
	})
	if err := validateOptions(simOptions{
		Scale:            *scale,
		Cores:            *cores,
		MapBits:          *mapBits,
		DataFrac:         *dataFrac,
		FaultRate:        *faultRate,
		QualityBudget:    *qualityBudget,
		QualityBudgetSet: budgetSet,
		CanaryRate:       *canaryRate,
		TraceDir:         *traceDir,
		TraceCapture:     *traceCapture,
		TraceReplay:      *traceReplay,
		TraceVerify:      *traceVerify,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "doppelsim: %v\n", err)
		os.Exit(2)
	}

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "doppelsim: %v\n", err)
		os.Exit(1)
	}
	if *traceDir != "" {
		// Lock and scrub the trace directory before any run trusts its
		// contents: orphaned temps are swept, condemned captures quarantined.
		store, err := doppelganger.OpenTraceStore(*traceDir, *traceVerify)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		if rep := store.Report; !rep.Skipped &&
			(rep.TempsRemoved > 0 || rep.Quarantined > 0 || rep.Unreadable > 0) {
			fmt.Fprintf(os.Stderr, "doppelsim: trace scrub: removed %d temp(s), quarantined %d, %d unreadable (%d verified)\n",
				rep.TempsRemoved, rep.Quarantined, rep.Unreadable, rep.Verified)
		}
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "doppelsim: pprof server: %v\n", err)
			}
		}()
	}
	var reg *doppelganger.MetricsRegistry
	if *metricsOut != "" {
		reg = doppelganger.NewMetricsRegistry()
	}
	var tw *doppelganger.TraceWriter
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		tw = doppelganger.NewTraceWriter(f)
	}
	// writeObservability dumps the collected metrics/trace before exit.
	writeObservability := func(task string) {
		if reg != nil {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			if err := reg.WriteJSONL(f, task); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		if tw != nil {
			if err := tw.Close(); err != nil {
				fatal(err)
			}
			if err := traceFile.Close(); err != nil {
				fatal(err)
			}
		}
	}

	var kind doppelganger.LLCKind
	switch *llc {
	case "baseline":
		kind = doppelganger.Baseline
	case "split":
		kind = doppelganger.SplitDoppelganger
	case "unified":
		kind = doppelganger.UniDoppelganger
	default:
		fmt.Fprintf(os.Stderr, "doppelsim: unknown LLC organization %q\n", *llc)
		os.Exit(2)
	}

	if *saveTo != "" {
		if err := saveBundle(*bench, *scale, *cores, *saveTo, reg); err != nil {
			fatal(err)
		}
		writeObservability(*bench + "/record")
		return
	}
	if *replay != "" {
		if err := replayBundle(*replay, *llc, *mapBits, *dataFrac, *cores, reg, tw); err != nil {
			fatal(err)
		}
		writeObservability(*replay + "/" + *llc)
		return
	}

	model, err := doppelganger.ParseFaultModel(*faultModel)
	if err != nil {
		fatal(err)
	}
	var inj *doppelganger.FaultInjector
	if *faultRate > 0 {
		inj = doppelganger.NewFaultInjector(doppelganger.FaultConfig{
			Seed:  doppelganger.DeriveFaultSeed(*faultSeed, *bench+"/"+*llc),
			Model: model,
			Rate:  *faultRate,
		})
		inj.AttachMetrics(reg)
	}
	// newGuard builds one run's quality controller (a serial structure, like
	// the injector: each concurrent simulation needs its own).
	newGuard := func(key string) *doppelganger.QualityController {
		if *qualityBudget <= 0 {
			return nil
		}
		qc, err := doppelganger.NewQualityController(doppelganger.QualityConfig{
			Seed:       doppelganger.DeriveQualitySeed(*qualitySeed, key),
			Budget:     *qualityBudget,
			CanaryRate: *canaryRate,
		})
		if err != nil {
			fatal(err)
		}
		return qc
	}
	qc := newGuard(*bench + "/" + *llc)
	qc.AttachMetrics(reg)

	opts := doppelganger.RunOptions{
		Scale:        *scale,
		MapBits:      *mapBits,
		DataFrac:     *dataFrac,
		Cores:        *cores,
		Metrics:      reg,
		Trace:        tw,
		Faults:       inj,
		Quality:      qc,
		TraceDir:     *traceDir,
		TraceCapture: *traceCapture,
		TraceReplay:  *traceReplay,
	}

	// The functional-error measurement and the cycle-level timing
	// comparison are independent simulations, so with -timing they run
	// concurrently (each already overlaps its own baseline reference run).
	// An injector is serial, so the timing replay gets its own instance
	// with a stream derived from the same seed.
	var (
		tc    *doppelganger.TimingComparison
		tcErr error
		tcWG  sync.WaitGroup
	)
	if *timing {
		topts := opts
		if inj != nil {
			topts.Faults = doppelganger.NewFaultInjector(doppelganger.FaultConfig{
				Seed:  doppelganger.DeriveFaultSeed(*faultSeed, *bench+"/"+*llc+"/timing"),
				Model: model,
				Rate:  *faultRate,
			})
		}
		topts.Quality = newGuard(*bench + "/" + *llc + "/timing")
		tcWG.Add(1)
		go func() {
			defer tcWG.Done()
			tc, tcErr = doppelganger.RunTiming(*bench, kind, topts)
		}()
	}

	var res *doppelganger.BenchmarkResult
	if strings.Contains(*bench, "+") {
		// "a+b" co-schedules programs a and b (multiprogrammed run, §4.1).
		res, err = doppelganger.RunMultiprogram(strings.Split(*bench, "+"), kind, opts)
	} else {
		res, err = doppelganger.RunBenchmark(*bench, kind, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "doppelsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark:       %s\n", *bench)
	fmt.Printf("llc:             %s (M=%d)\n", *llc, *mapBits)
	fmt.Printf("output error:    %.4f (%.2f%%)\n", res.Error, 100*res.Error)
	fmt.Printf("resident tags:   %d\n", res.LLCTags)
	fmt.Printf("data blocks:     %d\n", res.LLCDataBlocks)
	if res.LLCDataBlocks > 0 {
		fmt.Printf("tags per block:  %.2f\n", res.AvgTagsPerData)
	}
	if s := res.Stats; s != nil {
		fmt.Printf("doppel reads:    %d (%.1f%% hits)\n", s.Reads, 100*float64(s.ReadHits)/float64(max64(s.Reads, 1)))
		fmt.Printf("inserts:         %d (%d linked to similar blocks)\n", s.Inserts, s.ReuseLinks)
		fmt.Printf("writes:          %d silent, %d remapped, %d allocated\n", s.SilentWrites, s.Remaps, s.WriteAllocs)
		fmt.Printf("evictions:       %d tags (%.1f%% dirty), %d data entries\n",
			s.TagEvictions, 100*float64(s.DirtyTagEvictions)/float64(max64(s.TagEvictions, 1)), s.DataEvictions)
	}
	if inj != nil {
		fmt.Printf("faults injected: %d (rate %g, model %s, seed %d)\n",
			inj.TotalFaults(), *faultRate, model, *faultSeed)
		for _, t := range faults.Targets() {
			s := inj.Stats(t)
			fmt.Printf("  %-9s %d faults / %d draws\n", t.String()+":", s.Faults, s.Accesses)
		}
	}
	if qc != nil {
		s := qc.Stats()
		fmt.Printf("quality guard:   %s (est. error %.4f, budget %g)\n", qc.State(), qc.Estimate(), *qualityBudget)
		fmt.Printf("  canaries:      %d checked of %d draws (rate %g, seed %d)\n",
			s.Canaries, s.CanaryDraws, *canaryRate, *qualitySeed)
		fmt.Printf("  breaker:       %d trips, %d re-entries, %d approx loads served precisely\n",
			s.Trips, s.Reentries, s.Bypassed)
	}

	if *timing {
		tcWG.Wait()
		if tcErr != nil {
			fmt.Fprintf(os.Stderr, "doppelsim: timing: %v\n", tcErr)
			os.Exit(1)
		}
		fmt.Printf("cycles:          %d (baseline %d)\n", tc.Cycles, tc.BaselineCycles)
		fmt.Printf("norm. runtime:   %.3f\n", tc.NormalizedRuntime)
		fmt.Printf("LLC MPKI:        %.2f\n", tc.MPKI)
		fmt.Printf("norm. traffic:   %.3f\n", tc.NormalizedTraffic)
	}
	writeObservability(*bench + "/" + *llc)
}

// saveBundle records the benchmark on the baseline LLC and writes a
// self-contained trace bundle (traces + initial memory + annotations).
func saveBundle(bench string, scale float64, cores int, path string, reg *doppelganger.MetricsRegistry) error {
	f, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	run := workloads.RunFunctional(f.New(scale), workloads.BaselineBuilder(2<<20, 16),
		workloads.RunOptions{Cores: cores, Record: true, Metrics: reg})
	b, err := workloads.BundleOf(run)
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	n, err := b.WriteTo(out)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s: %d accesses, %d bytes\n", path, run.Recorder.Len(), n)
	return nil
}

// replayBundle loads a trace bundle and replays it cycle-accurately against
// the chosen organization.
func replayBundle(path, llc string, mapBits int, dataFrac float64, cores int,
	reg *doppelganger.MetricsRegistry, tw *doppelganger.TraceWriter) error {
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	b, err := workloads.ReadBundle(in)
	if err != nil {
		return err
	}
	if dataFrac == 0 {
		dataFrac = 0.25
		if llc == "unified" {
			dataFrac = 0.5
		}
	}
	builder := workloads.BaselineBuilder(2<<20, 16)
	switch llc {
	case "baseline":
	case "split":
		builder = workloads.SplitBuilder(mapBits, dataFrac)
	case "unified":
		builder = workloads.UnifiedBuilder(mapBits, dataFrac)
	default:
		return fmt.Errorf("unknown LLC organization %q", llc)
	}
	cfg := timesim.DefaultConfig()
	cfg.Cores = cores
	cfg.Metrics = reg
	if tw != nil {
		cfg.Trace, cfg.TracePID, cfg.TraceLabel = tw, 1, path+" ("+llc+")"
	}
	res := timesim.Run(b.Traces, b.InitialMem, b.Annotations, builder, cfg)
	if err := res.CrossCheck(); err != nil {
		return err
	}
	fmt.Printf("replayed %s against %s (M=%d, data %g)\n", path, llc, mapBits, dataFrac)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("instructions:    %d (IPC %.2f over %d cores)\n",
		res.Instructions, float64(res.Instructions)/float64(res.Cycles), cores)
	fmt.Printf("LLC MPKI:        %.2f\n", res.MPKI())
	fmt.Printf("off-chip blocks: %d\n", res.MemTraffic())
	return nil
}
