package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"doppelganger/internal/metrics"
	"doppelganger/internal/sweep"
	"doppelganger/internal/trace"
)

// soakCell is one grid cell the soak's table is built from. The set is small
// enough to re-run every round yet exercises both organizations, two
// benchmarks and their shared precise baselines — five capture files total.
type soakCell struct {
	org  string
	name string
	m    int
	frac float64
}

var soakCells = []soakCell{
	{"split", "kmeans", 12, 0.25},
	{"split", "kmeans", 14, 0.25},
	{"unified", "kmeans", 14, 0.25},
	{"split", "swaptions", 14, 0.25},
}

// Config parameterizes one soak.
type Config struct {
	Rounds int     // chaos rounds to run
	Scale  float64 // workload scale (small: each round replays the table)
	Seed   int64   // chaos RNG seed; the same seed replays the same faults
	Dir    string  // trace directory under attack ("" = a fresh temp dir)
	Logf   func(format string, args ...interface{})
}

// Report is the soak's outcome, serialized to BENCH_9.json. Every field is
// cumulative over all rounds.
type Report struct {
	Rounds        int    `json:"rounds"`
	Scale         float64 `json:"scale"`
	Seed          int64  `json:"seed"`
	CorruptRounds int    `json:"corrupt_rounds"`
	CrashRounds   int    `json:"crash_rounds"`
	ChaosFSRounds int    `json:"chaosfs_rounds"`

	CorruptionsInjected int    `json:"corruptions_injected"`
	OrphanTempsPlanted  int    `json:"orphan_temps_planted"`
	WorkersKilled       int    `json:"workers_killed"`
	FSFaultsInjected    uint64 `json:"fs_faults_injected"`

	TempsRemoved int    `json:"temps_removed"`
	Quarantined  int    `json:"quarantined"`
	Unreadable   int    `json:"unreadable"`
	Replays      uint64 `json:"trace_replays"`
	Records      uint64 `json:"trace_records"`
	Degraded     uint64 `json:"trace_degraded"`

	ByteIdentical bool   `json:"byte_identical"`
	Goroutines    int    `json:"goroutine_baseline"`
	DurationMS    int64  `json:"duration_ms"`
	FailedRound   int    `json:"failed_round,omitempty"`
	Failure       string `json:"failure,omitempty"`
}

// workerEnv flags a child process into worker mode: it runs one recording
// pass over the trace directory and exits. The parent SIGKILLs it at a
// random point to simulate a crashed recorder. maybeWorker is called first
// thing by both main() and TestMain, so the soak can re-exec whichever
// binary it lives in.
const (
	workerEnv      = "CHAOSSOAK_WORKER"
	workerDirEnv   = "CHAOSSOAK_DIR"
	workerScaleEnv = "CHAOSSOAK_SCALE"
)

func maybeWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	scale, err := strconv.ParseFloat(os.Getenv(workerScaleEnv), 64)
	if err != nil || scale <= 0 {
		fmt.Fprintf(os.Stderr, "chaossoak worker: bad scale %q\n", os.Getenv(workerScaleEnv))
		os.Exit(2)
	}
	// The worker behaves like a real CLI: open (lock + scrub) the store,
	// then run the table, recording whatever captures are missing.
	dir := os.Getenv(workerDirEnv)
	store, err := trace.OpenStore(trace.OS, dir, trace.VerifyOpen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaossoak worker: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()
	if _, err := renderTable(soakRunner(scale, dir, nil)); err != nil {
		fmt.Fprintf(os.Stderr, "chaossoak worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// soakRunner builds the runner every pass uses: same scale, same subset, an
// optional fault-injecting filesystem, always a fresh registry so per-pass
// counters are attributable.
func soakRunner(scale float64, dir string, fsys trace.FS) *sweep.Runner {
	r := sweep.NewRunner(scale)
	r.Only = []string{"kmeans", "swaptions"}
	r.TraceDir = dir
	r.TraceFS = fsys
	r.Metrics = metrics.NewRegistry()
	return r
}

// renderTable computes every soak cell and renders the byte-exact table the
// soak compares across rounds: one line per cell with the error's full
// float64 bit pattern. Any divergence anywhere in the simulation shows up.
func renderTable(r *sweep.Runner) (string, error) {
	var b strings.Builder
	for _, c := range soakCells {
		f := r.SplitError
		if c.org == "unified" {
			f = r.UnifiedError
		}
		v, err := f(c.name, c.m, c.frac)
		if err != nil {
			return "", fmt.Errorf("%s/%s/m%d/f%g: %w", c.org, c.name, c.m, c.frac, err)
		}
		fmt.Fprintf(&b, "%s %s m=%d f=%g %016x\n", c.org, c.name, c.m, c.frac, math.Float64bits(v))
	}
	return b.String(), nil
}

// captureFiles lists the .dgt files currently in the trace directory.
func captureFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".dgt") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

// corruptFile damages one capture in a way the scrub must catch: a bit flip,
// a truncation, or an XOR smear over a random window. All three guarantee
// the bytes actually change.
func corruptFile(path string, rng *rand.Rand) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if len(data) == 0 {
		return "", fmt.Errorf("%s: empty capture", path)
	}
	var kind string
	switch rng.Intn(3) {
	case 0:
		kind = "bitflip"
		data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
	case 1:
		kind = "truncate"
		data = data[:rng.Intn(len(data))]
	default:
		kind = "smear"
		off := rng.Intn(len(data))
		end := off + 32
		if end > len(data) {
			end = len(data)
		}
		for i := off; i < end; i++ {
			data[i] ^= 0xA5
		}
	}
	return kind, os.WriteFile(path, data, 0o644)
}

// deleteSome removes up to n random captures so the next pass has something
// to re-record (a warm directory replays everything and writes nothing).
func deleteSome(files []string, n int, rng *rand.Rand) int {
	deleted := 0
	for i := 0; i < n && len(files) > 0; i++ {
		j := rng.Intn(len(files))
		if os.Remove(files[j]) == nil {
			deleted++
		}
		files = append(files[:j], files[j+1:]...)
	}
	return deleted
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack for runtime helpers); a count that never settles is a
// leak.
func settleGoroutines(baseline int) error {
	const slack = 4
	var n int
	for i := 0; i < 100; i++ {
		if n = runtime.NumGoroutine(); n <= baseline+slack {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("goroutine leak: %d live, baseline %d (+%d slack)", n, baseline, slack)
}

// addRunnerCounters folds one pass's trace counters into the report.
func (rep *Report) addRunnerCounters(r *sweep.Runner) {
	rep.Replays += r.Metrics.CounterValue("trace.replays")
	rep.Records += r.Metrics.CounterValue("trace.records")
	rep.Degraded += r.Metrics.CounterValue("trace.degraded")
}

// Run executes the soak: a clean reference pass establishes the golden
// table, then every round injects one class of fault (file corruption,
// SIGKILL of a recording worker process, or a fault-injecting filesystem)
// and proves the store heals — scrub quarantines exactly the damaged
// captures, the re-run table is byte-identical to the golden, no temp files
// survive, and goroutines return to baseline.
func Run(cfg Config) (*Report, error) {
	start := time.Now()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	rep := &Report{Rounds: cfg.Rounds, Scale: cfg.Scale, Seed: cfg.Seed}
	fail := func(round int, format string, args ...interface{}) (*Report, error) {
		err := fmt.Errorf(format, args...)
		rep.FailedRound = round
		rep.Failure = err.Error()
		rep.DurationMS = time.Since(start).Milliseconds()
		return rep, err
	}

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "chaossoak-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep.Goroutines = runtime.NumGoroutine()

	// The golden table: every cell live, no trace directory in the loop.
	golden, err := renderTable(soakRunner(cfg.Scale, "", nil))
	if err != nil {
		return fail(0, "golden pass: %v", err)
	}
	// Cold pass populates the directory and must already match.
	cold := soakRunner(cfg.Scale, dir, nil)
	if got, err := renderTable(cold); err != nil {
		return fail(0, "cold pass: %v", err)
	} else if got != golden {
		return fail(0, "cold pass diverged from golden:\n%s\nvs\n%s", got, golden)
	}
	rep.addRunnerCounters(cold)
	logf("golden established (%d captures), %d rounds begin", len(soakCells)+1, cfg.Rounds)

	for round := 1; round <= cfg.Rounds; round++ {
		files, err := captureFiles(dir)
		if err != nil {
			return fail(round, "list captures: %v", err)
		}
		wantQuarantined := 0
		switch action := rng.Intn(3); action {
		case 0: // corrupt 1-2 captures on disk, plus sometimes an orphan temp
			rep.CorruptRounds++
			n := 1 + rng.Intn(2)
			if n > len(files) {
				n = len(files)
			}
			for _, j := range rng.Perm(len(files))[:n] {
				kind, err := corruptFile(files[j], rng)
				if err != nil {
					return fail(round, "corrupt %s: %v", files[j], err)
				}
				logf("round %d: %s %s", round, kind, filepath.Base(files[j]))
				rep.CorruptionsInjected++
				wantQuarantined++
			}
			if rng.Intn(2) == 0 {
				orphan := filepath.Join(dir, fmt.Sprintf("orphan.dgt.tmp-%d", rng.Int()))
				if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
					return fail(round, "plant orphan: %v", err)
				}
				rep.OrphanTempsPlanted++
			}
		case 1: // SIGKILL a recording worker process mid-run
			rep.CrashRounds++
			deleteSome(files, 1+rng.Intn(2), rng)
			cmd := exec.Command(self)
			cmd.Env = append(os.Environ(),
				workerEnv+"=1", workerDirEnv+"="+dir,
				workerScaleEnv+"="+strconv.FormatFloat(cfg.Scale, 'g', -1, 64))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fail(round, "start worker: %v", err)
			}
			delay := time.Duration(rng.Intn(800)) * time.Millisecond
			time.Sleep(delay)
			cmd.Process.Kill()
			cmd.Wait()
			rep.WorkersKilled++
			logf("round %d: SIGKILLed recording worker after %v", round, delay)
		default: // run through a fault-injecting filesystem
			rep.ChaosFSRounds++
			deleteSome(files, 1, rng)
			chaos := trace.NewChaosFS(rng.Int63())
			chaos.OpenErr, chaos.ReadErr = 0.05, 0.05
			chaos.WriteErr, chaos.RenameErr, chaos.ShortWrite = 0.10, 0.10, 0.05
			chaos.Latency = time.Millisecond
			if rng.Intn(3) == 0 {
				chaos.ENOSPCWindow(1 + rng.Intn(3))
			}
			r := soakRunner(cfg.Scale, dir, chaos)
			got, err := renderTable(r)
			if err != nil {
				// Cells must degrade, never fail, under injected I/O faults.
				return fail(round, "chaosfs pass failed instead of degrading: %v", err)
			}
			if got != golden {
				return fail(round, "chaosfs pass diverged from golden:\n%s\nvs\n%s", got, golden)
			}
			rep.addRunnerCounters(r)
			rep.FSFaultsInjected += uint64(chaos.Counts().Total())
			logf("round %d: chaosfs pass survived %d injected faults", round, chaos.Counts().Total())
		}

		// Recovery: scrub, re-run, compare bytes, check invariants.
		store, err := trace.OpenStore(trace.OS, dir, trace.VerifyOpen)
		if err != nil {
			return fail(round, "recovery open: %v", err)
		}
		sr := store.Report
		store.Close()
		rep.TempsRemoved += sr.TempsRemoved
		rep.Quarantined += sr.Quarantined
		rep.Unreadable += sr.Unreadable
		if sr.Quarantined != wantQuarantined {
			return fail(round, "scrub quarantined %d captures, injected %d corruptions", sr.Quarantined, wantQuarantined)
		}
		if sr.Unreadable != 0 {
			return fail(round, "scrub left %d unreadable captures on a healthy disk", sr.Unreadable)
		}
		rec := soakRunner(cfg.Scale, dir, nil)
		got, err := renderTable(rec)
		if err != nil {
			return fail(round, "recovery pass: %v", err)
		}
		if got != golden {
			return fail(round, "recovery pass diverged from golden:\n%s\nvs\n%s", got, golden)
		}
		rep.addRunnerCounters(rec)

		// No orphaned temps outside the janitor's reach, and a second scrub
		// finds nothing left to condemn — no quarantine loop.
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fail(round, "list dir: %v", err)
		}
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp-") {
				return fail(round, "orphan temp survived recovery: %s", e.Name())
			}
		}
		check, err := trace.OpenStore(trace.OS, dir, trace.VerifyOpen)
		if err != nil {
			return fail(round, "post-recovery open: %v", err)
		}
		cr := check.Report
		check.Close()
		if cr.Quarantined != 0 || cr.TempsRemoved != 0 {
			return fail(round, "post-recovery scrub still condemned files (quarantined %d, temps %d): quarantine loop",
				cr.Quarantined, cr.TempsRemoved)
		}
		if err := settleGoroutines(rep.Goroutines); err != nil {
			return fail(round, "round %d: %v", round, err)
		}
		logf("round %d: healed (table byte-identical, %d quarantined, %d temps swept)",
			round, sr.Quarantined, sr.TempsRemoved)
	}

	// Final paranoid pass: fully decode every survivor.
	final, err := trace.OpenStore(trace.OS, dir, trace.VerifyFull)
	if err != nil {
		return fail(cfg.Rounds, "final full scrub: %v", err)
	}
	fr := final.Report
	final.Close()
	if fr.Quarantined != 0 || fr.Unreadable != 0 {
		return fail(cfg.Rounds, "final full scrub condemned %d captures (%d unreadable) after recovery",
			fr.Quarantined, fr.Unreadable)
	}
	rep.ByteIdentical = true
	rep.DurationMS = time.Since(start).Milliseconds()
	return rep, nil
}
