// Command chaossoak is the whole-stack chaos harness for the persistent
// trace store: it repeatedly damages a live trace directory — flipping and
// truncating capture files, planting orphaned atomic-write temps, SIGKILLing
// a recording worker process mid-write, injecting ENOSPC / EIO / short
// writes / latency through the filesystem seam — and after every round
// proves the store heals itself: the startup scrub quarantines exactly the
// damaged captures, the re-run result table is byte-identical to a clean
// run, no temp files survive, and no goroutines leak.
//
// Usage:
//
//	chaossoak -rounds 50 -scale 0.02 -out BENCH_9.json
//
// Exit status 0 means every round healed; 1 names the first broken
// invariant. The JSON report tallies everything injected and everything
// recovered.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	maybeWorker() // re-exec'd children record instead of soaking
	var (
		rounds = flag.Int("rounds", 50, "chaos rounds to run")
		scale  = flag.Float64("scale", 0.02, "workload scale (small: every round re-runs the whole table)")
		seed   = flag.Int64("seed", 1, "chaos RNG seed; the same seed replays the same fault schedule")
		dir    = flag.String("dir", "", "trace directory to soak (default: a fresh temp dir, removed on exit)")
		out    = flag.String("out", "", "write the JSON soak report to this file")
		quiet  = flag.Bool("quiet", false, "suppress per-round progress")
	)
	flag.Parse()
	if *rounds < 1 {
		fmt.Fprintln(os.Stderr, "chaossoak: -rounds must be at least 1")
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "chaossoak: -scale must be positive")
		os.Exit(2)
	}

	cfg := Config{Rounds: *rounds, Scale: *scale, Seed: *seed, Dir: *dir}
	if !*quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "chaossoak: "+format+"\n", args...)
		}
	}
	rep, err := Run(cfg)
	if rep != nil && *out != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "chaossoak: write report: %v\n", merr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaossoak: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaossoak: %d rounds healed: %d corruptions quarantined, %d temps swept, %d workers killed, %d fs faults injected, %d cells degraded\n",
		rep.Rounds, rep.Quarantined, rep.TempsRemoved, rep.WorkersKilled, rep.FSFaultsInjected, rep.Degraded)
}
