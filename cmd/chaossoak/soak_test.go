package main

import (
	"os"
	"testing"
)

// TestMain lets the soak's crash rounds re-exec this test binary as a
// recording worker: the parent sets CHAOSSOAK_WORKER and SIGKILLs the child
// mid-record.
func TestMain(m *testing.M) {
	maybeWorker()
	os.Exit(m.Run())
}

// TestChaosSoakShort is the `make chaos-smoke` entry: a handful of chaos
// rounds under -race. The full 50-round soak runs via the binary (see
// BENCH_9.json); this keeps CI wall-clock sane while still covering every
// fault class most seeds hit within five rounds.
func TestChaosSoakShort(t *testing.T) {
	rounds := 5
	if testing.Short() {
		rounds = 3
	}
	rep, err := Run(Config{Rounds: rounds, Scale: 0.02, Seed: 7, Logf: t.Logf})
	if err != nil {
		t.Fatalf("round %d: %v", rep.FailedRound, err)
	}
	if !rep.ByteIdentical {
		t.Error("soak completed without the byte-identical verdict")
	}
	if rep.CorruptionsInjected > 0 && rep.Quarantined != rep.CorruptionsInjected {
		t.Errorf("injected %d corruptions but quarantined %d", rep.CorruptionsInjected, rep.Quarantined)
	}
	if rep.Records == 0 {
		t.Error("soak never recorded a capture (rounds did nothing)")
	}
}
