package doppelganger_test

import (
	"fmt"

	"doppelganger"
)

// Build a small Doppelgänger cache, insert two approximately similar blocks
// and observe them sharing one data array entry.
func ExampleNewDoppelganger() {
	store := doppelganger.NewStore()
	const base = doppelganger.Addr(0x100000)
	ann, _ := doppelganger.NewAnnotations(doppelganger.Region{
		Name:  "readings",
		Start: base, End: base + 2*doppelganger.BlockSize,
		Type: doppelganger.F32, Min: 0, Max: 100,
	})
	for i := 0; i < 16; i++ {
		store.WriteF32(base+doppelganger.Addr(i*4), 42)
		store.WriteF32(base+doppelganger.Addr(64+i*4), 42.0001) // similar, not identical
	}

	cache, _ := doppelganger.NewDoppelganger(doppelganger.DoppelConfig{
		Name:       "example",
		TagEntries: 64, TagWays: 4,
		DataEntries: 16, DataWays: 4,
		MapSpec: doppelganger.MapSpec{M: 14},
	}, store, ann)

	cache.Read(base)
	cache.Read(base + 64)
	fmt.Printf("%d tags share %d data entries\n", cache.TagEntries(), cache.DataBlocks())

	data, eff := cache.Read(base + 64) // hit: returns the representative
	fmt.Printf("hit=%v value=%.1f\n", eff.Hit, data.Elem(doppelganger.F32, 0))
	// Output:
	// 2 tags share 1 data entries
	// hit=true value=42.0
}

// Inspect the Table 1 configurations and the calibrated hardware model.
func ExampleBaselineHardware() {
	base := doppelganger.BaselineHardware()
	split := doppelganger.SplitHardware(14, 0.25)
	fmt.Printf("area reduction: %.2fx\n", base.AreaMM2()/split.AreaMM2())
	fmt.Printf("leakage reduction: %.2fx\n", base.LeakageMW()/split.LeakageMW())
	// Output:
	// area reduction: 1.58x
	// leakage reduction: 1.43x
}

// The annotation contract: regions must be block aligned and disjoint.
func ExampleNewAnnotations() {
	_, err := doppelganger.NewAnnotations(
		doppelganger.Region{Name: "a", Start: 0, End: 128, Type: doppelganger.U8, Max: 255},
		doppelganger.Region{Name: "b", Start: 64, End: 192, Type: doppelganger.U8, Max: 255},
	)
	fmt.Println(err != nil)
	// Output:
	// true
}
