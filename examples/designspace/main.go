// Designspace: explore the Doppelgänger hardware design space with the
// CACTI-surrogate cost model — no simulation, purely the Table 3 / Fig. 13
// silicon math. For every (map size, data array size) point it prints the
// LLC area, leakage power, and the worst-case per-access energy, next to
// the baseline 2 MB LLC.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"

	"doppelganger"
)

func main() {
	base := doppelganger.BaselineHardware()
	baseAccess := base.Precise.TagEnergyPJ() + base.Precise.DataEnergyPJ()
	fmt.Printf("baseline 2MB LLC: %.2f mm^2, %.1f mW leakage, %.0f pJ/access\n\n",
		base.AreaMM2(), base.LeakageMW(), baseAccess)

	fmt.Printf("%-8s %-10s %10s %12s %16s %12s\n",
		"map", "data", "area mm^2", "leakage mW", "approx pJ/acc", "area gain")
	for _, m := range []int{12, 13, 14} {
		for _, frac := range []float64{0.5, 0.25, 0.125} {
			hw := doppelganger.SplitHardware(m, frac)
			access := hw.DoppelTag.TagEnergyPJ() +
				hw.DoppelData.TagEnergyPJ() + hw.DoppelData.DataEnergyPJ()
			fmt.Printf("%-8d %-10s %10.2f %12.1f %16.1f %11.2fx\n",
				m, fracName(frac), hw.AreaMM2(), hw.LeakageMW(), access,
				base.AreaMM2()/hw.AreaMM2())
		}
	}
	fmt.Println("\nthe data array size dominates area; the map size only affects tag width.")
}

func fracName(f float64) string {
	switch f {
	case 0.5:
		return "1/2"
	case 0.25:
		return "1/4"
	case 0.125:
		return "1/8"
	}
	return fmt.Sprintf("%g", f)
}
