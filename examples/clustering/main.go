// Clustering: the paper's kmeans workload (pixel clustering from AxBench)
// under the uniDoppelgänger organization, sweeping the data array size like
// the paper's Fig. 14 — a single cache serving both the approximate pixel
// features and the precise centroids/assignments.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"doppelganger"
)

func main() {
	const scale = 0.5

	fmt.Println("kmeans under uniDoppelganger (precise + approximate in one cache):")
	for _, frac := range []float64{0.75, 0.5, 0.25} {
		res, err := doppelganger.RunBenchmark("kmeans", doppelganger.UniDoppelganger,
			doppelganger.RunOptions{Scale: scale, DataFrac: frac})
		if err != nil {
			log.Fatal(err)
		}
		hw := doppelganger.UnifiedHardware(14, frac)
		baseHW := doppelganger.BaselineHardware()
		fmt.Printf("  %4.0f%% data array: centroid error %.4f%%, LLC area %.2f mm^2 (%.2fx smaller)\n",
			100*frac, 100*res.Error, hw.AreaMM2(), baseHW.AreaMM2()/hw.AreaMM2())
	}
	fmt.Println("shrinking the unified data array trades area for (slight) clustering error.")
}
