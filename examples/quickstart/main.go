// Quickstart: build a Doppelgänger cache by hand, feed it approximately
// similar blocks, and watch multiple tags share one data array entry.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"doppelganger"
)

func main() {
	// 1. Simulated main memory and a programmer annotation: one region of
	// float32 sensor readings expected to stay within [20, 45] (think body
	// temperatures, as in the paper's §3.7 example).
	store := doppelganger.NewStore()
	const base = doppelganger.Addr(0x100000)
	const blocks = 8
	ann, err := doppelganger.NewAnnotations(doppelganger.Region{
		Name:  "temperatures",
		Start: base,
		End:   base + blocks*doppelganger.BlockSize,
		Type:  doppelganger.F32,
		Min:   20,
		Max:   45,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fill memory: blocks 0-3 hold readings near 36.6°C, blocks 4-7 near
	// 24°C. Within each group the values differ slightly — approximately
	// similar, not identical.
	for b := 0; b < blocks; b++ {
		temp := 36.6
		if b >= 4 {
			temp = 24.0
		}
		// Perturbations well under one 14-bit map bin (the [20,45] range
		// divides into bins of 25/2^14 ≈ 0.0015°C), so blocks in a group
		// are similar but not bit-identical.
		for i := 0; i < 16; i++ {
			addr := base + doppelganger.Addr(b*doppelganger.BlockSize+i*4)
			store.WriteF32(addr, float32(temp)+float32(b%4)*0.0002+float32(i)*0.00003)
		}
	}

	// 3. A small Doppelgänger cache: 64 tags but only 16 data blocks, with
	// the paper's 14-bit map space.
	cfg := doppelganger.DoppelConfig{
		Name:       "quickstart",
		TagEntries: 64, TagWays: 4,
		DataEntries: 16, DataWays: 4,
		MapSpec: doppelganger.MapSpec{M: 14},
	}
	cache, err := doppelganger.NewDoppelganger(cfg, store, ann)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read every block once (each read misses and inserts).
	for b := 0; b < blocks; b++ {
		cache.Read(base + doppelganger.Addr(b*doppelganger.BlockSize))
	}
	fmt.Printf("inserted %d blocks -> %d tags sharing %d data entries (%.1f tags/entry)\n",
		blocks, cache.TagEntries(), cache.DataBlocks(), cache.AvgTagsPerData())

	// 5. Re-read block 3: it hits, but returns its doppelgänger — the
	// representative values of the first ~36.6° block.
	data, eff := cache.Read(base + 3*doppelganger.BlockSize)
	fmt.Printf("re-read block 3: hit=%v, first element=%.3f (stored %.3f)\n",
		eff.Hit, data.Elem(doppelganger.F32, 0),
		store.ReadF32(base+3*doppelganger.BlockSize))

	fmt.Printf("stats: %d reuse links, %d new data blocks, %d map generations\n",
		cache.Stats.ReuseLinks, cache.Stats.NewDataBlocks, cache.Stats.MapGens)
}
