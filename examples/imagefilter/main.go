// Imagefilter: run the paper's jpeg workload — an image compression
// pipeline whose input and output images are both annotated approximate —
// against the baseline LLC and the split Doppelgänger LLC, and report the
// image-level error the approximation introduces.
//
// This is the scenario the paper's Fig. 1 motivates: neighboring image
// blocks hold approximately similar pixels, so one data entry can stand in
// for many blocks.
//
// Run with: go run ./examples/imagefilter
package main

import (
	"fmt"
	"log"

	"doppelganger"
)

func main() {
	const scale = 0.5 // half-size image keeps the example quick

	fmt.Println("running jpeg pipeline against the baseline 2MB LLC...")
	base, err := doppelganger.RunBenchmark("jpeg", doppelganger.Baseline,
		doppelganger.RunOptions{Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: %d resident blocks, exact output\n", base.LLCTags)

	for _, m := range []int{12, 13, 14} {
		res, err := doppelganger.RunBenchmark("jpeg", doppelganger.SplitDoppelganger,
			doppelganger.RunOptions{Scale: scale, MapBits: m})
		if err != nil {
			log.Fatal(err)
		}
		sharing := 0.0
		if res.LLCDataBlocks > 0 {
			sharing = float64(res.LLCTags) / float64(res.LLCDataBlocks)
		}
		fmt.Printf("  doppelganger M=%d: image error %.2f%%, %.1f tags per data entry\n",
			m, 100*res.Error, sharing)
	}
	fmt.Println("smaller map spaces merge more pixel blocks: more savings, more error.")
}
