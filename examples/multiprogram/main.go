// Multiprogram: two applications with opposite approximate footprints —
// jpeg (~100% approximate) and swaptions (~1% approximate) — share the CMP
// and its LLC, each with its own annotation ranges (the paper's
// per-application range registers, §4.1).
//
// This is the scenario that motivates uniDoppelgänger (§3.8): under the
// split organization the approximate-heavy program can only use the
// Doppelgänger half and the precise-heavy program only the 1 MB precise
// half, while the unified design lets both footprints share one data array.
//
// Run with: go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	"doppelganger"
)

func main() {
	const scale = 0.3
	pair := []string{"jpeg", "swaptions"}

	fmt.Println("co-scheduling jpeg (approximate-heavy) with swaptions (precise-heavy):")
	for _, cfg := range []struct {
		name string
		kind doppelganger.LLCKind
	}{
		{"split precise+Doppelganger", doppelganger.SplitDoppelganger},
		{"uniDoppelganger", doppelganger.UniDoppelganger},
	} {
		res, err := doppelganger.RunMultiprogram(pair, cfg.kind, doppelganger.RunOptions{Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s mean error %.2f%%, %d resident tags over %d data blocks\n",
			cfg.name+":", 100*res.Error, res.LLCTags, res.LLCDataBlocks)
	}
	fmt.Println("both organizations serve the mixed workload; the unified data array")
	fmt.Println("additionally lets precise blocks use capacity jpeg does not need.")
}
