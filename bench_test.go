package doppelganger

// One benchmark per table and figure of the paper's evaluation (§5), plus
// micro-benchmarks of the core mechanisms and the hash-function ablation
// called out in DESIGN.md. The table/figure benches run the full experiment
// pipeline at reduced workload scale; `cmd/experiments -scale 1` regenerates
// the paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"os"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/bdi"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
	"doppelganger/internal/sweep"
	"doppelganger/internal/trace"
)

// benchScale keeps the per-iteration experiment runs tractable.
const benchScale = 0.05

func newEval() *Evaluation { return NewEvaluation(benchScale, nil) }

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Table2()
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig2()
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig7()
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig8()
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig9()
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig10()
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig11()
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig12()
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig13()
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Fig14()
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newEval().Table3()
	}
}

// BenchmarkGridSerial and BenchmarkGridParallel measure the full dynamic
// simulation grid (all baselines plus every split/unified error and timing
// run) computed lazily on one goroutine versus fanned out over the engine's
// worker pool. On a machine with ≥4 CPUs the parallel run should beat the
// serial one by at least the number of independent benchmarks' worth of
// overlap; compare with:
//
//	go test -bench 'BenchmarkGrid(Serial|Parallel)' -benchtime 1x .
func BenchmarkGridSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := newEval()
		ev.Parallel(1)
		if err := ev.Prewarm(false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := newEval()
		ev.Parallel(0) // GOMAXPROCS workers
		if err := ev.Prewarm(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuncSweep measures the functional error sweep the persistent
// trace cache accelerates: for every benchmark, the precise baseline plus
// the paper's split (Figs. 9–12) and uniDoppelgänger (Fig. 14) error cells.
// By default each iteration replays from a trace directory pre-populated
// outside the timer; with DOPPEL_BENCH_LIVE=1 every iteration executes the
// kernels live instead. bench_baseline_6.txt is committed from the live
// mode (`make bench-baseline`), so the speedup BENCH_6.json reports for
// this benchmark is the warm-replay-versus-live ratio — the trace
// substrate's acceptance number (≥3×).
func BenchmarkFuncSweep(b *testing.B) {
	dir := b.TempDir()
	if os.Getenv("DOPPEL_BENCH_LIVE") != "" {
		dir = "" // no trace cache: every cell runs its kernels
	}
	sweepOnce := func() {
		r := sweep.NewRunner(benchScale)
		r.TraceDir = dir
		for _, name := range r.Benchmarks() {
			for _, m := range sweep.MapSpaces {
				if _, err := r.SplitError(name, m, sweep.BaseDataFrac); err != nil {
					b.Fatal(err)
				}
			}
			for _, frac := range sweep.DataFracs {
				if _, err := r.SplitError(name, sweep.BaseMapBits, frac); err != nil {
					b.Fatal(err)
				}
			}
			for _, frac := range sweep.UniFracs {
				if _, err := r.UnifiedError(name, sweep.BaseMapBits, frac); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	sweepOnce() // populate the trace directory outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepOnce()
	}
}

// BenchmarkFuncSweepBatched is BenchmarkFuncSweep through the decoded-capture
// cache — the sweepd deployment, where one long-lived in-memory cache
// outlives every sweep over the trace directory. Each capture file is read
// and decoded once for the cache's lifetime instead of once per sweep, and
// baseline outputs are scored straight from their decoded captures, so a
// warm sweep rebuilds no hierarchy at all. With DOPPEL_BENCH_LIVE=1 the
// cache has nothing to serve and every cell executes live, identical to
// BenchmarkFuncSweep — so against the committed live baseline this row is
// the single-pass substrate's speedup, and the gap over the FuncSweep row
// is the decoded-cache win over per-cell file replay.
func BenchmarkFuncSweepBatched(b *testing.B) {
	dir := b.TempDir()
	if os.Getenv("DOPPEL_BENCH_LIVE") != "" {
		dir = "" // no trace cache: every cell runs its kernels
	}
	cache := trace.NewDecodedCache(512 << 20)
	sweepOnce := func() {
		r := sweep.NewRunner(benchScale)
		r.TraceDir = dir
		r.DecodedCache = cache
		r.ReplayBatch = 8
		for _, name := range r.Benchmarks() {
			for _, m := range sweep.MapSpaces {
				if _, err := r.SplitError(name, m, sweep.BaseDataFrac); err != nil {
					b.Fatal(err)
				}
			}
			for _, frac := range sweep.DataFracs {
				if _, err := r.SplitError(name, sweep.BaseMapBits, frac); err != nil {
					b.Fatal(err)
				}
			}
			for _, frac := range sweep.UniFracs {
				if _, err := r.UnifiedError(name, sweep.BaseMapBits, frac); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	sweepOnce() // populate the trace directory and decoded cache untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepOnce()
	}
}

// --- micro-benchmarks of the core mechanisms ---

func benchCache(b *testing.B) (*core.Doppelganger, *memdata.Store, []memdata.Addr) {
	b.Helper()
	st := memdata.NewStore()
	const base = memdata.Addr(0x100000)
	ann := approx.MustAnnotations(approx.Region{
		Name: "r", Start: base, End: base + 1<<22, Type: memdata.F32, Min: 0, Max: 100,
	})
	d := core.MustNew(core.Config{
		Name:       "bench",
		TagEntries: 16 << 10, TagWays: 16,
		DataEntries: 4 << 10, DataWays: 16,
		MapSpec: approx.MapSpec{M: 14},
	}, st, ann)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]memdata.Addr, 8192)
	for i := range addrs {
		addrs[i] = base + memdata.Addr(i*memdata.BlockSize)
		blk := st.Block(addrs[i])
		v := float64(rng.Intn(64)) // 64 value classes: plenty of sharing
		for e := 0; e < 16; e++ {
			blk.SetElem(memdata.F32, e, v)
		}
	}
	return d, st, addrs
}

// BenchmarkDoppelReadHit measures the tag→MTag→data lookup path (§3.2).
func BenchmarkDoppelReadHit(b *testing.B) {
	d, _, addrs := benchCache(b)
	for _, a := range addrs {
		d.Read(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(addrs[i%len(addrs)])
	}
}

// BenchmarkDoppelInsert measures the miss path: map generation, MTag probe
// and tag linking (§3.3).
func BenchmarkDoppelInsert(b *testing.B) {
	d, _, addrs := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		d.EvictFor(a)
		d.Read(a)
	}
}

// BenchmarkDoppelWriteBack measures the §3.4 write path (map recompute and
// possible migration).
func BenchmarkDoppelWriteBack(b *testing.B) {
	d, st, addrs := benchCache(b)
	for _, a := range addrs {
		d.Read(a)
	}
	payload := st.Block(addrs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteBack(addrs[i%len(addrs)], payload)
	}
}

// BenchmarkMapGeneration measures the average+range hash and mapping step
// alone (the hardware spends 21 FMA ops ≈ 168 pJ on this, §5.6).
func BenchmarkMapGeneration(b *testing.B) {
	r := &approx.Region{Name: "r", Start: 0, End: 1 << 20, Type: memdata.F32, Min: 0, Max: 100}
	spec := approx.MapSpec{M: 14}
	var blk memdata.Block
	for e := 0; e < 16; e++ {
		blk.SetElem(memdata.F32, e, float64(e)*3.7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.MapValue(&blk, r)
	}
}

// BenchmarkBDICompress measures the BΔI comparator's encoder.
func BenchmarkBDICompress(b *testing.B) {
	var blk memdata.Block
	for i := 0; i < 16; i++ {
		blk.SetElem(memdata.I32, i, float64(100000+i*7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bdi.CompressedSize(&blk)
	}
}

// BenchmarkAblationCompressedData compares the plain data array against the
// BΔI-compressed variant (the paper's §5.1 Doppelgänger+BΔI combination) at
// the same SRAM byte budget: the compressed array uses half the bytes per
// set but holds compressible payloads at near-full effective capacity.
func BenchmarkAblationCompressedData(b *testing.B) {
	type variant struct {
		name string
		cfg  func(core.Config) core.Config
	}
	variants := []variant{
		{"plain-full", func(c core.Config) core.Config { return c }},
		{"plain-half-entries", func(c core.Config) core.Config {
			c.DataEntries /= 2 // same SRAM bytes as the compressed variant
			return c
		}},
		{"compressed-half-bytes", func(c core.Config) core.Config {
			c.CompressedData = true
			c.CompressBudget = 0.5
			return c
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				st := memdata.NewStore()
				const base = memdata.Addr(0x100000)
				ann := approx.MustAnnotations(approx.Region{
					Name: "r", Start: base, End: base + 1<<22, Type: memdata.F32, Min: 0, Max: 100,
				})
				cfg := v.cfg(core.Config{
					Name:       "abl",
					TagEntries: 1 << 10, TagWays: 16,
					DataEntries: 256, DataWays: 16,
					MapSpec: approx.MapSpec{M: 14},
				})
				d := core.MustNew(cfg, st, ann)
				rng := rand.New(rand.NewSource(21))
				// Mostly compressible blocks (smooth sensor frames), some noise.
				for a := 0; a < 512; a++ {
					blk := st.Block(base + memdata.Addr(a*memdata.BlockSize))
					v0 := float64(a % 97)
					for e := 0; e < 16; e++ {
						if a%5 == 0 {
							blk.SetElem(memdata.F32, e, rng.Float64()*100)
						} else {
							blk.SetElem(memdata.F32, e, v0)
						}
					}
				}
				for n := 0; n < 20000; n++ {
					a := rng.Intn(512)
					d.Read(base + memdata.Addr(a*memdata.BlockSize))
				}
				hitRate = float64(d.Stats.ReadHits) / float64(d.Stats.Reads)
			}
			b.ReportMetric(hitRate*100, "%hit")
		})
	}
}

// --- ablation: hash-function choice (DESIGN.md §3.1) ---

// ablationSavings measures, for one hash variant, both the storage savings
// (fewer unique keys = more sharing) and the bad-merge rate: the fraction of
// blocks that share a key with a block of a *different shape* (uniform vs
// steep-gradient blocks with the same mean). The paper's combined
// average+range hash exists precisely to keep savings while rejecting those
// bad merges — an average-only hash cannot tell a flat block from a ramp.
func ablationSavings(mode string) (savings, badMerge float64) {
	rng := rand.New(rand.NewSource(42))
	r := &approx.Region{Name: "r", Start: 0, End: 1 << 24, Type: memdata.F32, Min: 0, Max: 100}
	spec := approx.MapSpec{M: 14}
	const blocks = 4096
	type group struct {
		flat, ramp, total  int
		centerLo, centerHi float64
	}
	groups := make(map[uint64]*group)
	for i := 0; i < blocks; i++ {
		var blk memdata.Block
		center := 10 + float64(rng.Intn(32))*2.5
		isRamp := i%2 == 1
		for e := 0; e < 16; e++ {
			v := center
			if isRamp {
				v = center + 12*(float64(e)-7.5)/7.5 // same mean, wide spread
			}
			blk.SetElem(memdata.F32, e, v)
		}
		avg, rg := approx.BlockHashes(&blk, r)
		var key uint64
		switch mode {
		case "avg":
			key = uint64(avg / 100 * (1 << 14))
		case "range":
			key = uint64(rg / 100 * (1 << 14))
		default:
			key = uint64(spec.MapValue(&blk, r))
		}
		g := groups[key]
		if g == nil {
			g = &group{centerLo: center, centerHi: center}
			groups[key] = g
		}
		g.total++
		if isRamp {
			g.ramp++
		} else {
			g.flat++
		}
		if center < g.centerLo {
			g.centerLo = center
		}
		if center > g.centerHi {
			g.centerHi = center
		}
	}
	// A merge is bad if a group mixes shapes (flat with ramp) or spans
	// centers farther apart than any reasonable similarity tolerance.
	bad := 0
	for _, g := range groups {
		if (g.flat > 0 && g.ramp > 0) || g.centerHi-g.centerLo > 2 {
			bad += g.total
		}
	}
	return 1 - float64(len(groups))/float64(blocks), float64(bad) / float64(blocks)
}

// BenchmarkAblationReplacement compares the paper's LRU data-array
// replacement against the tag-count-aware extension (§3.5 future work) on a
// reuse-heavy stream, reporting LLC hit rate and tag-eviction burden.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, policy := range []core.DataReplacement{core.ReplaceLRU, core.ReplaceTagCountAware} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			var hitRate, evictsPerKAccess float64
			for i := 0; i < b.N; i++ {
				st := memdata.NewStore()
				const base = memdata.Addr(0x100000)
				ann := approx.MustAnnotations(approx.Region{
					Name: "r", Start: base, End: base + 1<<22, Type: memdata.F32, Min: 0, Max: 100,
				})
				d := core.MustNew(core.Config{
					Name:       "abl",
					TagEntries: 1 << 10, TagWays: 16,
					DataEntries: 128, DataWays: 16,
					MapSpec:    approx.MapSpec{M: 14},
					DataPolicy: policy,
				}, st, ann)
				rng := rand.New(rand.NewSource(9))
				for a := 0; a < 768; a++ {
					blk := st.Block(base + memdata.Addr(a*memdata.BlockSize))
					v := float64(rng.Intn(48)) * 2 // 48 shared value classes
					if a%3 == 0 {
						v = 50 + float64(a)*0.013 // singletons
					}
					for e := 0; e < 16; e++ {
						blk.SetElem(memdata.F32, e, v)
					}
				}
				for n := 0; n < 20000; n++ {
					a := rng.Intn(768)
					if rng.Intn(4) > 0 {
						a = rng.Intn(192) // hot subset
					}
					d.Read(base + memdata.Addr(a*memdata.BlockSize))
				}
				hitRate = float64(d.Stats.ReadHits) / float64(d.Stats.Reads)
				evictsPerKAccess = float64(d.Stats.TagEvictions) / float64(d.Stats.Reads) * 1000
			}
			b.ReportMetric(hitRate*100, "%hit")
			b.ReportMetric(evictsPerKAccess, "tagevict/kacc")
		})
	}
}

// BenchmarkAblationHash reports each variant's savings and bad-merge rate
// as custom metrics while measuring its cost. Expected shape: avg-only has
// high savings but a high bad-merge rate; the combined hash keeps nearly
// the same savings with (close to) zero bad merges.
func BenchmarkAblationHash(b *testing.B) {
	for _, mode := range []string{"avg", "range", "combined"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var savings, bad float64
			for i := 0; i < b.N; i++ {
				savings, bad = ablationSavings(mode)
			}
			b.ReportMetric(savings*100, "%savings")
			b.ReportMetric(bad*100, "%badmerge")
		})
	}
}
